//! The simulated multicore machine.
//!
//! A [`System`] wires VM threads (one per core) to private L1s, a banked
//! shared L2 (MESI directory or DeNovo registry, one bank per tile), four
//! corner memory controllers, and the 2D-mesh network, and drives everything
//! from a deterministic event loop.
//!
//! # Core execution model
//!
//! The paper's core: in-order, 1 CPI, blocking loads, non-blocking stores.
//! ALU/branch runs execute as a batch (they cannot interact with other
//! cores); every memory access is issued at its exact cycle. Spin loops use
//! the VM's `SpinLoad`: a failed spin on a locally-usable copy *watches* the
//! word and re-issues when the copy is invalidated or stolen — this models
//! MESI's spin-on-cached-copy and DeNovo's spin-on-registered-word without
//! simulating each poll iteration (spinning time is attributed to compute,
//! as in the paper's breakdowns).
//!
//! # Cycle attribution
//!
//! Each core's cycles are attributed to the paper's Figure 3–7 components:
//! instruction retires → compute; blocking-miss latency → memory stall;
//! `Delay` instructions → their tagged component (non-synch dummy work,
//! software backoff); hardware-backoff stalls → hw backoff; and everything
//! executed in the `BarrierWait` phase → barrier stall.

use crate::chaos::FaultInjector;
use crate::config::{DataInvalidation, Protocol, SystemConfig};
use crate::denovo::{DnvL1, DnvRegistry};
use crate::gcs::{GcsBank, GcsL1};
use crate::mesi::{MesiDir, MesiL1};
use crate::msg::{CoreId, Endpoint, Msg};
use crate::oracle::{ChannelKey, OracleState};
use crate::proto::{Action, IssueResult};
use crate::replay::{Fronts, Recording, ReplayBoard, TraceCore, TraceOp, TraceRecorder, TraceStep};
use dvs_engine::{Cycle, DetRng, Scheduler};
use dvs_mem::layout::MemoryLayout;
use dvs_mem::{Addr, MainMemory, WordAddr};
use dvs_noc::{Mesh, Network, NodeId};
use dvs_stats::{RunStats, TimeComponent, TrafficClass, TrafficStats};
use dvs_telemetry::{
    Component, Event, EventKind, MetricsRegistry, RingSink, StallClass, Telemetry, TelemetryKey,
};
use dvs_vm::isa::PhaseChange;
use dvs_vm::reference::{pool_base, DEFAULT_POOL_BYTES};
use dvs_vm::{Effect, MemRequest, Program, StallTracker, Thread};
use std::sync::Arc;

/// Retry delay for structurally-blocked accesses.
const RETRY_CYCLES: Cycle = 4;
/// Safety valve on uninterrupted ALU batches.
const MAX_BATCH: Cycle = 100_000;
/// How many delivery events the always-on forensic ring remembers per
/// destination node.
const FORENSICS_PER_NODE: usize = 16;
/// Period (in delivered messages) of the full conservation scan when
/// invariant checking is enabled; targeted per-address checks run at every
/// delivery.
const FULL_SCAN_PERIOD: u64 = 4096;

/// Forensic snapshot of a stalled machine, attached to
/// [`SimError::Deadlock`] and [`SimError::CycleLimit`].
///
/// Everything is pre-rendered to strings so the report stays `Eq`/`Clone`
/// and needs no lifetime into the dead system.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StallReport {
    /// One line per non-halted core: its status and, where applicable, the
    /// blocked address and the cycle it got stuck.
    pub cores: Vec<String>,
    /// One line per outstanding L1 MSHR entry (the transient states).
    pub l1_pending: Vec<String>,
    /// Registry/directory state for every address involved in a stuck core
    /// or pending MSHR entry.
    pub l2_state: Vec<String>,
    /// The last delivered messages (per destination node), in delivery
    /// order, sourced from the telemetry forensic ring.
    pub recent_messages: Vec<String>,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "stalled cores:")?;
        for line in &self.cores {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "pending L1 transactions:")?;
        for line in &self.l1_pending {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "L2 state for stuck addresses:")?;
        for line in &self.l2_state {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "last {} delivered messages:", self.recent_messages.len())?;
        for line in &self.recent_messages {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel `Assert` failed on some core.
    KernelAssert {
        /// The failing core.
        core: CoreId,
        /// Program counter of the assertion.
        pc: usize,
        /// The assertion message.
        msg: &'static str,
    },
    /// The event queue drained before every thread halted (a lost wakeup or
    /// protocol deadlock).
    Deadlock {
        /// Threads still running.
        stuck: Vec<CoreId>,
        /// Why they are stuck: statuses, transient states, L2 entries, and
        /// the last delivered messages.
        report: Box<StallReport>,
    },
    /// The configured cycle limit was exceeded (livelock, or a genuinely
    /// too-small budget).
    CycleLimit {
        /// The configured limit.
        limit: Cycle,
        /// What the machine was doing when the budget ran out.
        report: Box<StallReport>,
    },
    /// A protocol controller reached a state/message combination the
    /// protocol specification does not allow, or a runtime coherence
    /// invariant failed. Always a simulator/protocol bug (or injected
    /// corruption), never a workload error.
    ProtocolViolation {
        /// Description of the violated rule, with endpoint and address.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::KernelAssert { core, pc, msg } => {
                write!(f, "core {core} assertion failed at pc {pc}: {msg}")
            }
            SimError::Deadlock { stuck, report } => {
                writeln!(f, "simulation deadlocked; stuck cores {stuck:?}")?;
                write!(f, "{report}")
            }
            SimError::CycleLimit { limit, report } => {
                writeln!(f, "cycle limit {limit} exceeded")?;
                write!(f, "{report}")
            }
            SimError::ProtocolViolation { detail } => {
                write!(f, "protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone)]
pub(crate) enum L1 {
    Mesi(MesiL1),
    Dnv(DnvL1),
    Gcs(GcsL1),
}

#[derive(Debug, Clone)]
pub(crate) enum Bank {
    Mesi(MesiDir),
    Dnv(DnvRegistry),
    Gcs(GcsBank),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Execute instructions on a core.
    Step(CoreId),
    /// Act on the core's parked status (re-issue, wake from delay, ...).
    Resume(CoreId),
    /// Deliver a message to a component.
    Deliver(Endpoint, MsgSlot),
}

/// Messages are boxed out-of-line to keep the event small.
type MsgSlot = usize;

#[derive(Debug, Clone)]
pub(crate) enum Status {
    /// A `Step` event is scheduled.
    Ready,
    /// Blocked on a memory access.
    BlockedMem { req: MemRequest, issued: Cycle },
    /// Spin-watching a word.
    Watching { req: MemRequest, since: Cycle },
    /// A `Resume` is scheduled to (re-)issue this request.
    Reissue {
        req: MemRequest,
        after_backoff: bool,
    },
    /// A `Resume` is scheduled after a `Delay`.
    DelaySleep,
    /// A `Resume` is scheduled to re-check a fence.
    PendingFence,
    /// Waiting for outstanding stores to drain.
    FenceWait { since: Cycle },
    /// The thread halted.
    Halted,
    /// The thread died on a failed assertion.
    Dead,
    /// Trace replay: parked until a sync completion advances the per-word
    /// ordering board past this core's next op's dependency.
    DepWait {
        /// A `Resume` is already scheduled (dedups wake-ups).
        woken: bool,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct CoreState {
    pub(crate) status: Status,
    outstanding_stores: usize,
    breakdown: dvs_stats::TimeBreakdown,
    /// Signature mode: data words written since this core's last release.
    cs_writes: Vec<WordAddr>,
    /// Signature mode: how much of the global publication log this core has
    /// already self-invalidated.
    sig_cursor: usize,
}

/// The simulated machine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct System {
    cfg: SystemConfig,
    layout: Arc<MemoryLayout>,
    sched: Scheduler<Ev>,
    /// In-flight message storage. Slots are recycled through `free_slots`
    /// the moment their `Deliver` event fires, so the pool's length tracks
    /// the *peak* number of simultaneously in-flight messages (a few dozen)
    /// instead of growing by every message ever sent.
    msg_pool: Vec<Msg>,
    /// Recycled `msg_pool` indexes, ready for the next `stash`.
    free_slots: Vec<MsgSlot>,
    /// `slot_live[s]` ⇔ slot `s` holds a scheduled-but-undelivered message.
    /// Maintained unconditionally — stash sets it, delivery clears it, in
    /// both invariant modes — so slot recycling has exactly one owner and
    /// the conservation checker can enumerate in-flight messages without a
    /// separate (and previously asymmetric) tracking set.
    slot_live: Vec<bool>,
    /// Recycled [`Action`] buffers for the deliver/issue hot path. A stack
    /// (not a single buffer) because `apply_actions` can re-enter through
    /// `core_done → issue_mem`; depth tracks the re-entrancy, which is
    /// shallow, so steady state allocates nothing per event.
    action_scratch: Vec<Vec<Action>>,
    net: Network,
    /// Per-core front-ends: VM threads, or trace-replay cores sharing a
    /// sync-ordering board (see [`crate::replay`]).
    fronts: Fronts,
    cores: Vec<CoreState>,
    l1s: Vec<L1>,
    banks: Vec<Bank>,
    memory: MainMemory,
    traffic: TrafficStats,
    /// Signature mode: the global publication log. Every release (sync
    /// store or RMW) appends the releasing core's writes; an acquire-side
    /// `SelfInv` invalidates the suffix the core has not seen yet. This is
    /// the DeNovoND-style dynamic alternative to static regions — monotone,
    /// so safely over-approximate, but it touches only words actually
    /// written (not whole regions).
    sig_log: Vec<WordAddr>,
    finished: usize,
    finish_time: Cycle,
    /// Observability only — never read back into simulated behaviour. The
    /// off handle makes every instrumentation site a no-op.
    tel: Telemetry,
    error: Option<SimError>,
    /// Delivery-path fault injection (None unless the config carries a
    /// [`FaultPlan`](crate::chaos::FaultPlan)).
    injector: Option<FaultInjector>,
    /// Always-on per-node ring of recent delivery events, for stall
    /// forensics. Fed directly (no handle) so it works with telemetry off.
    forensics: RingSink,
    /// Always-on stall interval accounting (memory / spin / backoff /
    /// fence), exported into the telemetry metrics tree after a run.
    stalls: StallTracker,
    /// Deliveries processed: the *delivery ordinal* stamped on traces, the
    /// message ring, and protocol-violation reports. Also paces the periodic
    /// full invariant scan.
    deliveries: u64,
    /// Untimed "oracle" mode for the model checker (`dvs-check`): sends
    /// enqueue into per-channel FIFO queues instead of timed `Deliver`
    /// events, and structurally-blocked cores park until the checker
    /// delivers a message. `None` for normal timed simulation.
    oracle: Option<OracleState>,
    /// Live trace recording (`dvs-trace`), attached via
    /// [`System::start_recording`]. Boxed to keep the machine small when
    /// not recording; `None` costs one branch per hook site.
    recorder: Option<Box<TraceRecorder>>,
}

// The campaign layer (`dvs-campaign`) materializes and runs full systems on
// worker threads, so the whole machine — and everything a run produces —
// must be `Send`. Asserted at compile time so a non-`Send` field added later
// fails here rather than in a downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
    assert_send::<SystemConfig>();
    assert_send::<SimError>();
    assert_send::<RunStats>();
};

impl System {
    /// Builds a system running one program per core.
    ///
    /// Layout and programs are reference-counted so a workload built once
    /// can be materialized into many systems (e.g. by a parallel experiment
    /// campaign) without deep-cloning its programs: pass `Arc`s to share,
    /// or plain values to have them wrapped on entry.
    ///
    /// # Panics
    ///
    /// Panics if the number of programs differs from the configured core
    /// count or the core count is not a perfect square (mesh).
    pub fn new(
        cfg: SystemConfig,
        layout: impl Into<Arc<MemoryLayout>>,
        programs: impl IntoIterator<Item = impl Into<Arc<Program>>>,
    ) -> Self {
        let programs: Vec<Arc<Program>> = programs.into_iter().map(Into::into).collect();
        assert_eq!(
            programs.len(),
            cfg.cores,
            "need exactly one program per core"
        );
        let root = DetRng::new(cfg.seed);
        let n = cfg.cores;
        let threads: Vec<Thread> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let mut t = Thread::new(i, n, p, root.split(i as u64));
                t.set_alloc_pool(pool_base(i), DEFAULT_POOL_BYTES);
                t
            })
            .collect();
        Self::assemble(cfg, layout.into(), Fronts::Vm(threads))
    }

    /// Builds a system whose cores replay recorded op streams instead of
    /// executing programs — the `dvs-trace` fast path (see
    /// [`crate::replay`]). The protocol stack is identical to
    /// [`System::new`]'s; only the core front-ends differ.
    ///
    /// # Panics
    ///
    /// Panics if the number of streams differs from the configured core
    /// count.
    pub fn new_replay(
        cfg: SystemConfig,
        layout: impl Into<Arc<MemoryLayout>>,
        streams: Vec<Arc<Vec<TraceOp>>>,
    ) -> Self {
        assert_eq!(
            streams.len(),
            cfg.cores,
            "need exactly one trace stream per core"
        );
        let cores = streams.into_iter().map(TraceCore::new).collect();
        Self::assemble(
            cfg,
            layout.into(),
            Fronts::Trace {
                cores,
                board: ReplayBoard::default(),
            },
        )
    }

    fn assemble(cfg: SystemConfig, layout: Arc<MemoryLayout>, fronts: Fronts) -> Self {
        let mesh = match cfg.mesh {
            Some(shape) => {
                assert_eq!(
                    shape.tiles(),
                    cfg.cores,
                    "mesh {} has {} tiles for {} cores",
                    shape.token(),
                    shape.tiles(),
                    cfg.cores
                );
                Mesh::new(shape.cols as usize, shape.rows as usize)
            }
            None => Mesh::square(cfg.cores),
        };
        let n = cfg.cores;
        let mut l1s: Vec<L1> = (0..n)
            .map(|i| match cfg.protocol {
                Protocol::Mesi => L1::Mesi(MesiL1::new(i, cfg.l1, n)),
                Protocol::DeNovoSync0 => L1::Dnv(DnvL1::new(
                    i,
                    cfg.l1,
                    n,
                    cfg.backoff,
                    false,
                    Arc::clone(&layout),
                )),
                Protocol::DeNovoSync => L1::Dnv(DnvL1::new(
                    i,
                    cfg.l1,
                    n,
                    cfg.backoff,
                    true,
                    Arc::clone(&layout),
                )),
                Protocol::Gcs => L1::Gcs(GcsL1::new(i, cfg.l1, n, Arc::clone(&layout))),
            })
            .collect();
        let mut banks: Vec<Bank> = (0..n)
            .map(|b| {
                let mem = Endpoint::Mem(mesh.nearest_corner(b));
                // Dense per-line state tables sized from the layout span;
                // out-of-layout lines (thread pools) spill to a sparse tier.
                match cfg.protocol {
                    Protocol::Mesi => Bank::Mesi({
                        let mut d = MesiDir::new(b, mem);
                        d.configure_span(&layout, n);
                        d
                    }),
                    Protocol::Gcs => Bank::Gcs({
                        let mut g = GcsBank::new(b, mem);
                        g.configure_span(&layout, n);
                        g
                    }),
                    _ => Bank::Dnv({
                        let mut r = DnvRegistry::new(b, mem);
                        r.configure_span(&layout, n);
                        r
                    }),
                }
            })
            .collect();
        if let Some(m) = cfg.mutation {
            for l1 in &mut l1s {
                if let L1::Mesi(l) = l1 {
                    l.set_mutation(Some(m));
                }
            }
            for bank in &mut banks {
                match bank {
                    Bank::Dnv(r) => r.set_mutation(Some(m)),
                    Bank::Gcs(g) => g.set_mutation(Some(m)),
                    Bank::Mesi(_) => {}
                }
            }
        }
        let mut net = Network::new(mesh, cfg.noc);
        if let Some(h) = cfg.hetero_links {
            net.enable_hetero_links(h.seed, h.max_extra);
        }
        if let Some(plan) = cfg.fault_plan {
            net.enable_jitter(plan.link_seed(), plan.link_jitter);
        }
        let memory = MainMemory::with_layout(&layout);
        let mut sys = System {
            cfg,
            layout,
            sched: Scheduler::new(),
            msg_pool: Vec::new(),
            free_slots: Vec::new(),
            slot_live: Vec::new(),
            action_scratch: Vec::new(),
            net,
            fronts,
            cores: (0..n)
                .map(|_| CoreState {
                    status: Status::Ready,
                    outstanding_stores: 0,
                    breakdown: dvs_stats::TimeBreakdown::new(),
                    cs_writes: Vec::new(),
                    sig_cursor: 0,
                })
                .collect(),
            l1s,
            banks,
            memory,
            traffic: TrafficStats::new(),
            sig_log: Vec::new(),
            finished: 0,
            finish_time: 0,
            tel: Telemetry::off(),
            error: None,
            injector: cfg.fault_plan.map(FaultInjector::new),
            forensics: RingSink::new(FORENSICS_PER_NODE),
            stalls: StallTracker::new(n),
            deliveries: 0,
            oracle: None,
            recorder: None,
        };
        for i in 0..n {
            sys.sched.schedule_at(0, Ev::Step(i));
        }
        sys
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory layout the workload was built against.
    pub fn layout(&self) -> &Arc<MemoryLayout> {
        &self.layout
    }

    /// Pre-initializes a word of main memory before running.
    pub fn preload(&mut self, addr: Addr, value: u64) {
        self.memory.write_word(addr.word(), value);
    }

    /// Overrides a thread's private bump-allocation pool (by default each
    /// thread gets a pool far above any layout; workloads that want nodes to
    /// participate in region self-invalidation place pools inside the
    /// layout).
    pub fn set_thread_pool(&mut self, core: CoreId, base: Addr, bytes: u64) {
        match &mut self.fronts {
            Fronts::Vm(ts) => ts[core].set_alloc_pool(base, bytes),
            // Replay cores carry no allocator: recorded `alloc` results are
            // baked into the op stream's addresses. Accepting (and
            // ignoring) the call lets one workload driver serve both modes.
            Fronts::Trace { .. } => {}
        }
    }

    /// Attaches a trace recorder capturing this run's per-core op streams
    /// and final memory image (see [`crate::replay`]). Call before
    /// [`System::run`]; seal with [`System::take_recording`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics on a trace-replay system (recording a replay is meaningless).
    pub fn start_recording(&mut self) {
        assert!(
            matches!(self.fronts, Fronts::Vm(_)),
            "recording requires a VM-driven system"
        );
        self.recorder = Some(Box::new(TraceRecorder::new(self.cfg.cores)));
    }

    /// Detaches and seals the recording started by
    /// [`System::start_recording`]. `init` is the workload's preloaded
    /// image, used to pin final values for words read but never written.
    pub fn take_recording(&mut self, init: &[(Addr, u64)]) -> Option<Recording> {
        self.recorder.take().map(|r| r.finish(init))
    }

    /// Attaches a telemetry sink, cloning the shared handle into every
    /// instrumented component: the network, each L1 (and its MSHR), each L2
    /// bank, and the stall tracker. The default handle is
    /// [`Telemetry::off`], under which every instrumentation site costs one
    /// branch and builds no event.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.net.set_telemetry(tel.clone());
        self.stalls.set_telemetry(tel.clone());
        for l1 in &mut self.l1s {
            match l1 {
                L1::Mesi(l) => l.set_telemetry(tel.clone()),
                L1::Dnv(l) => l.set_telemetry(tel.clone()),
                L1::Gcs(l) => l.set_telemetry(tel.clone()),
            }
        }
        for bank in &mut self.banks {
            match bank {
                Bank::Mesi(d) => d.set_telemetry(tel.clone()),
                Bank::Dnv(r) => r.set_telemetry(tel.clone()),
                Bank::Gcs(g) => g.set_telemetry(tel.clone()),
            }
        }
        self.tel = tel;
    }

    /// The attached telemetry handle (the off handle unless
    /// [`System::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Builds the hierarchical metrics tree for this system: per-core stall
    /// counts and duration histograms, L1 hit/miss counters, MSHR high-water
    /// marks, and system-level delivery/traffic totals. Every value is a
    /// simulated quantity, so the tree is identical across hosts, worker
    /// counts, and telemetry sinks.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.stalls.export(&mut reg);
        for (i, l1) in self.l1s.iter().enumerate() {
            let node = format!("core{i}");
            let (stats, high_water) = match l1 {
                L1::Mesi(l) => (l.stats(), l.mshr_high_water()),
                L1::Dnv(l) => (l.stats(), l.mshr_high_water()),
                L1::Gcs(l) => (l.stats(), l.mshr_high_water()),
            };
            reg.add(&node, "l1", "hits", stats.hits());
            reg.add(&node, "l1", "misses", stats.misses());
            reg.add(&node, "mshr", "high_water", high_water as u64);
        }
        for (b, bank) in self.banks.iter().enumerate() {
            if let Bank::Gcs(g) = bank {
                let node = format!("bank{b}");
                reg.add(&node, "gcs", "notifies", g.notifies());
                reg.add(&node, "gcs", "recalls", g.recalls());
            }
        }
        reg.add("sys", "sched", "deliveries", self.deliveries);
        reg.add("sys", "sched", "finish_cycle", self.finish_time);
        for class in TrafficClass::ALL {
            let name = format!("flits_{}", class.label().to_ascii_lowercase());
            reg.add("sys", "noc", &name, self.traffic.get(class));
        }
        reg
    }

    /// A thread's architectural state (for test assertions after a run).
    ///
    /// # Panics
    ///
    /// Panics on a trace-replay system (replay cores have no registers).
    pub fn thread(&self, i: CoreId) -> &Thread {
        match &self.fronts {
            Fronts::Vm(ts) => &ts[i],
            Fronts::Trace { .. } => panic!("trace-replay systems have no VM threads"),
        }
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::KernelAssert`] if a program assertion fails,
    /// [`SimError::Deadlock`] if the event queue drains with threads still
    /// running, [`SimError::CycleLimit`] if the configured limit is hit.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        // The event loop is monomorphized over the two per-event policies —
        // telemetry clock publication and invariant checking — so the common
        // configuration (both off) dispatches events with no per-event
        // branching on either.
        let result = match (self.tel.enabled(), self.cfg.check_invariants) {
            (false, false) => self.run_loop::<false, false>(),
            (false, true) => self.run_loop::<false, true>(),
            (true, false) => self.run_loop::<true, false>(),
            (true, true) => self.run_loop::<true, true>(),
        };
        result?;
        let stuck: Vec<CoreId> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.status, Status::Halted))
            .map(|(i, _)| i)
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock {
                stuck,
                report: self.stall_report(),
            });
        }
        self.stalls.finish(self.finish_time);
        self.tel.flush();
        Ok(self.collect_stats())
    }

    /// The monomorphized event loop behind [`System::run`]. `TEL` publishes
    /// the simulated clock to the telemetry handle per event; `INV` runs the
    /// delivery-boundary invariant checkers.
    fn run_loop<const TEL: bool, const INV: bool>(&mut self) -> Result<(), SimError> {
        while let Some((now, ev)) = self.sched.pop() {
            if now > self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.cfg.max_cycles,
                    report: self.stall_report(),
                });
            }
            if TEL {
                self.tel.set_now(now);
            }
            match ev {
                Ev::Step(i) => self.step_core(i),
                Ev::Resume(i) => self.resume_core(i),
                Ev::Deliver(ep, slot) => {
                    let msg = self.msg_pool[slot];
                    self.release_slot(slot);
                    self.deliveries += 1;
                    self.note_delivery(now, ep, &msg);
                    self.deliver(ep, msg);
                    if INV && self.error.is_none() {
                        self.check_delivery_invariants(&msg);
                    }
                }
            }
            if let Some(err) = self.error.take() {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Records one message delivery into the always-on forensic ring and,
    /// when a sink is attached, the telemetry stream.
    fn note_delivery(&mut self, now: Cycle, ep: Endpoint, msg: &Msg) {
        let (component, node) = match ep {
            Endpoint::L1(i) => (Component::L1, i as u32),
            Endpoint::Bank(b) => (Component::Dir, b as u32),
            Endpoint::Mem(n) => (Component::Sys, n as u32),
        };
        let ev = Event {
            cycle: now,
            node,
            component,
            addr: Self::msg_line(msg).telemetry_key(),
            kind: EventKind::Delivery {
                msg: msg.kind_name(),
                ordinal: self.deliveries,
            },
        };
        self.forensics.push(&ev);
        self.tel.emit(|| ev);
    }

    fn collect_stats(&self) -> RunStats {
        let mut cache = dvs_stats::CacheStats::new();
        for l1 in &self.l1s {
            cache += match l1 {
                L1::Mesi(l) => l.stats(),
                L1::Dnv(l) => l.stats(),
                L1::Gcs(l) => l.stats(),
            };
        }
        RunStats {
            cycles: self.finish_time,
            per_core: self.cores.iter().map(|c| c.breakdown).collect(),
            traffic: self.traffic,
            cache,
            events: self.sched.scheduled_events(),
        }
    }

    /// Verifies the quiescent-state coherence invariants after a completed
    /// run (no in-flight messages): exactly the properties the protocols
    /// exist to maintain.
    ///
    /// * **DeNovo single-registrant rule**: every word the registry marks
    ///   `Registered(c)` is actually held (Registered, or mid-writeback) by
    ///   core `c`, and — the converse — every L1-registered word is the one
    ///   the registry points at, so no word ever has two registrants.
    /// * **MESI owner/sharer agreement**: every directory-owned line is in
    ///   E/M at exactly its owner; every resident S line is covered by the
    ///   directory's sharer mask; no L1 transactions or directory busy
    ///   states remain.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn verify_coherence(&self) -> Result<(), String> {
        match self.cfg.protocol {
            Protocol::Mesi => self.verify_mesi(),
            Protocol::Gcs => self.verify_gcs(),
            _ => self.verify_denovo(),
        }
    }

    fn verify_denovo(&self) -> Result<(), String> {
        // Gather every L1's registered words.
        let mut holders: std::collections::HashMap<WordAddr, CoreId> =
            std::collections::HashMap::new();
        for (c, l1) in self.l1s.iter().enumerate() {
            let L1::Dnv(l1) = l1 else {
                unreachable!("protocol mismatch")
            };
            if l1.outstanding_txns() != 0 {
                return Err(format!(
                    "core {c}: {} MSHR entries at quiescence",
                    l1.outstanding_txns()
                ));
            }
            for w in l1.registered_words() {
                if let Some(prev) = holders.insert(w, c) {
                    return Err(format!(
                        "word {w} registered at both core {prev} and core {c}"
                    ));
                }
            }
        }
        // Registry pointers must agree with the holders, in both directions.
        let mut pointed = 0usize;
        for bank in &self.banks {
            let Bank::Dnv(reg) = bank else {
                unreachable!("protocol mismatch")
            };
            if reg.any_fetching() {
                return Err("registry line still fetching at quiescence".into());
            }
            for (w, c) in reg.registrations() {
                pointed += 1;
                match holders.get(&w) {
                    Some(&h) if h == c => {}
                    Some(&h) => {
                        return Err(format!(
                            "registry points {w} at core {c}, but core {h} holds it"
                        ))
                    }
                    None => return Err(format!("registry points {w} at core {c}, which lacks it")),
                }
            }
        }
        if pointed != holders.len() {
            return Err(format!(
                "{} words registered in L1s but only {pointed} registry pointers",
                holders.len()
            ));
        }
        Ok(())
    }

    /// GCS quiescent invariants: the DeNovo data-path rules for unclassified
    /// words, plus the sync-path rules — a classified word is Valid at its
    /// home bank with **no silent sharer** (no L1 holds it Registered), and
    /// the whole sync tier is idle: no recall in flight, no parked
    /// requests, no waiter bits, no armed remote watches.
    fn verify_gcs(&self) -> Result<(), String> {
        let mut holders: std::collections::HashMap<WordAddr, CoreId> =
            std::collections::HashMap::new();
        for (c, l1) in self.l1s.iter().enumerate() {
            let L1::Gcs(l1) = l1 else {
                unreachable!("protocol mismatch")
            };
            if l1.outstanding_txns() != 0 {
                return Err(format!(
                    "core {c}: {} MSHR entries at quiescence",
                    l1.outstanding_txns()
                ));
            }
            if let Some(w) = l1.remote_watch_word() {
                return Err(format!("core {c}: remote watch on {w} at quiescence"));
            }
            for w in l1.registered_words() {
                if let Some(prev) = holders.insert(w, c) {
                    return Err(format!(
                        "word {w} registered at both core {prev} and core {c}"
                    ));
                }
            }
        }
        let mut pointed = 0usize;
        for (b, bank) in self.banks.iter().enumerate() {
            let Bank::Gcs(bank) = bank else {
                unreachable!("protocol mismatch")
            };
            if bank.any_fetching() {
                return Err(format!("bank {b}: line still fetching at quiescence"));
            }
            if bank.sync_busy() {
                return Err(format!(
                    "bank {b}: sync entry mid-recall or holding parked requests at quiescence"
                ));
            }
            if bank.waiter_count() != 0 {
                return Err(format!(
                    "bank {b}: {} waiter bits set at quiescence",
                    bank.waiter_count()
                ));
            }
            for w in bank.classified_words() {
                if let Some(&c) = holders.get(&w) {
                    return Err(format!(
                        "classified word {w} has a silent sharer: core {c} holds it Registered"
                    ));
                }
                match bank.word(w) {
                    Some(crate::denovo::registry::RegWord::Valid(_)) => {}
                    other => {
                        return Err(format!(
                            "classified word {w} is {other:?} at bank {b}, not Valid"
                        ))
                    }
                }
            }
            for (w, c) in bank.registrations() {
                pointed += 1;
                match holders.get(&w) {
                    Some(&h) if h == c => {}
                    Some(&h) => {
                        return Err(format!(
                            "registry points {w} at core {c}, but core {h} holds it"
                        ))
                    }
                    None => return Err(format!("registry points {w} at core {c}, which lacks it")),
                }
            }
        }
        if pointed != holders.len() {
            return Err(format!(
                "{} words registered in L1s but only {pointed} registry pointers",
                holders.len()
            ));
        }
        Ok(())
    }

    fn verify_mesi(&self) -> Result<(), String> {
        use crate::mesi::l1::Stable;
        let mut owners: std::collections::HashMap<dvs_mem::LineAddr, CoreId> =
            std::collections::HashMap::new();
        let mut sharers: std::collections::HashMap<dvs_mem::LineAddr, u64> =
            std::collections::HashMap::new();
        for (c, l1) in self.l1s.iter().enumerate() {
            let L1::Mesi(l1) = l1 else {
                unreachable!("protocol mismatch")
            };
            if l1.outstanding_txns() != 0 {
                return Err(format!(
                    "core {c}: {} MSHR entries at quiescence",
                    l1.outstanding_txns()
                ));
            }
            for (line, state) in l1.resident_lines() {
                match state {
                    Stable::E | Stable::M => {
                        if let Some(prev) = owners.insert(line, c) {
                            return Err(format!("line {line} owned by both {prev} and {c}"));
                        }
                    }
                    Stable::S => *sharers.entry(line).or_default() |= 1 << c,
                }
            }
        }
        for bank in &self.banks {
            let Bank::Mesi(dir) = bank else {
                unreachable!("protocol mismatch")
            };
            if dir.any_busy() {
                return Err("directory line busy at quiescence".into());
            }
            for (line, mask, owner) in dir.entries() {
                if let Some(o) = owner {
                    if owners.get(&line) != Some(&o) {
                        return Err(format!("directory says {line} owned by {o}, L1s disagree"));
                    }
                }
                let actual = sharers.get(&line).copied().unwrap_or(0);
                if actual & !mask != 0 {
                    return Err(format!(
                        "line {line}: cores {:#x} hold S copies outside the sharer mask {mask:#x}",
                        actual & !mask
                    ));
                }
                if owner.is_none() && owners.contains_key(&line) {
                    return Err(format!(
                        "line {line} owned by core {} but directory has no owner",
                        owners[&line]
                    ));
                }
            }
        }
        Ok(())
    }

    // --- runtime invariant checking ---------------------------------------

    /// The cache line a message concerns, for targeted invariant checks.
    fn msg_line(msg: &Msg) -> dvs_mem::LineAddr {
        match msg {
            Msg::Mesi(m) => m.line(),
            Msg::Dnv(m) => m.word().line(),
            Msg::Gcs(m) => m.word().line(),
            Msg::MemRead { line, .. } | Msg::MemData { line, .. } | Msg::MemWrite { line, .. } => {
                *line
            }
        }
    }

    /// Runs the delivery-boundary invariant checks after one message: a
    /// targeted check of the delivered message's line, plus a periodic full
    /// scan (settled-state invariants over every tracked address and
    /// MSHR/in-flight conservation). Any failure is converted to
    /// [`SimError::ProtocolViolation`] via `self.error`.
    fn check_delivery_invariants(&mut self, msg: &Msg) {
        let line = Self::msg_line(msg);
        if let Err(detail) = self.check_line_invariants(line) {
            self.violation(detail);
            return;
        }
        if self.deliveries.is_multiple_of(FULL_SCAN_PERIOD) {
            if let Err(detail) = self.verify_invariants() {
                self.violation(detail);
            }
        }
    }

    /// Checks the transient-tolerant coherence invariants for one line.
    ///
    /// Unlike [`System::verify_coherence`] (which requires quiescence),
    /// these hold at *every* message-delivery boundary. The key notion is a
    /// **settled** copy: state the L1 holds with no outstanding MSHR entry
    /// for the address — transient states are exempted, settled state must
    /// already obey the protocol's stable-state rules.
    fn check_line_invariants(&self, line: dvs_mem::LineAddr) -> Result<(), String> {
        match self.cfg.protocol {
            Protocol::Mesi => self.check_mesi_line(line),
            Protocol::Gcs => {
                for word in line.words() {
                    self.check_gcs_word(word)?;
                }
                Ok(())
            }
            _ => {
                for word in line.words() {
                    self.check_denovo_word(word)?;
                }
                Ok(())
            }
        }
    }

    /// DeNovo, per word: (1) at most one settled registrant anywhere;
    /// (2) a registry pointer `Registered(c)` means core `c` either holds
    /// the word registered or has an MSHR transaction on it (the pointer is
    /// re-pointed eagerly, so the target may still be mid-registration);
    /// (3) a registry `Valid` word has no settled registrant at all.
    fn check_denovo_word(&self, word: WordAddr) -> Result<(), String> {
        use crate::denovo::registry::RegWord;
        let mut settled: Option<CoreId> = None;
        for (c, l1) in self.l1s.iter().enumerate() {
            let L1::Dnv(l1) = l1 else {
                unreachable!("protocol mismatch")
            };
            if l1.word_registered(word) {
                if let Some(prev) = settled {
                    return Err(format!(
                        "word {word}: settled registrants at both core {prev} and core {c}"
                    ));
                }
                settled = Some(c);
            }
        }
        let bank = self.home_bank(word.line());
        let Bank::Dnv(reg) = &self.banks[bank] else {
            unreachable!("protocol mismatch")
        };
        match reg.word(word) {
            Some(RegWord::Registered(c)) => {
                let L1::Dnv(l1) = &self.l1s[c] else {
                    unreachable!("protocol mismatch")
                };
                if !l1.word_registered(word) && !l1.has_pending(word) {
                    return Err(format!(
                        "bank {bank}: registry points {word} at core {c}, which neither holds \
                         it nor has a transaction on it"
                    ));
                }
            }
            Some(RegWord::Valid(_)) => {
                if let Some(c) = settled {
                    return Err(format!(
                        "bank {bank}: registry holds {word} Valid while core {c} has it \
                         settled-Registered"
                    ));
                }
            }
            None => {}
        }
        Ok(())
    }

    /// GCS, per word. Unclassified words obey the DeNovo rules (at most one
    /// settled registrant; pointer targets hold or are mid-transaction; a
    /// `Valid` registry word has no settled registrant). Classified words
    /// obey the sync-path rules: once the recall handshake settles, the word
    /// is **Valid at its home bank with no silent sharer** (no settled
    /// L1 registrant anywhere), and every set waiter bit targets a core
    /// whose L1 has a remote watch armed on exactly that word — so a
    /// notify's fan-out always matches the true waiter set.
    fn check_gcs_word(&self, word: WordAddr) -> Result<(), String> {
        use crate::denovo::registry::RegWord;
        let mut settled: Option<CoreId> = None;
        for (c, l1) in self.l1s.iter().enumerate() {
            let L1::Gcs(l1) = l1 else {
                unreachable!("protocol mismatch")
            };
            if l1.word_registered(word) {
                if let Some(prev) = settled {
                    return Err(format!(
                        "word {word}: settled registrants at both core {prev} and core {c}"
                    ));
                }
                settled = Some(c);
            }
        }
        let bank = self.home_bank(word.line());
        let Bank::Gcs(gcs) = &self.banks[bank] else {
            unreachable!("protocol mismatch")
        };
        if gcs.classified(word) {
            if gcs.recalling(word) {
                // Mid-recall: the previous registrant may legitimately still
                // hold the word; only the waiter-set direction is checkable.
            } else {
                if let Some(c) = settled {
                    return Err(format!(
                        "bank {bank}: classified word {word} has a silent sharer at core {c}"
                    ));
                }
                match gcs.word(word) {
                    Some(RegWord::Valid(_)) => {}
                    other => {
                        return Err(format!(
                            "bank {bank}: classified word {word} is {other:?}, not Valid"
                        ))
                    }
                }
            }
            for c in gcs.waiters_of(word) {
                let L1::Gcs(l1) = &self.l1s[c] else {
                    unreachable!("protocol mismatch")
                };
                if l1.remote_watch_word() != Some(word) {
                    return Err(format!(
                        "bank {bank}: waiter bit for core {c} on {word}, but that core is \
                         remote-watching {:?}",
                        l1.remote_watch_word()
                    ));
                }
            }
            return Ok(());
        }
        match gcs.word(word) {
            Some(RegWord::Registered(c)) => {
                let L1::Gcs(l1) = &self.l1s[c] else {
                    unreachable!("protocol mismatch")
                };
                if !l1.word_registered(word) && !l1.has_pending(word) {
                    return Err(format!(
                        "bank {bank}: registry points {word} at core {c}, which neither holds \
                         it nor has a transaction on it"
                    ));
                }
            }
            Some(RegWord::Valid(_)) => {
                if let Some(c) = settled {
                    return Err(format!(
                        "bank {bank}: registry holds {word} Valid while core {c} has it \
                         settled-Registered"
                    ));
                }
            }
            None => {}
        }
        Ok(())
    }

    /// MESI, per line: (1) at most one settled owner (E/M with no MSHR
    /// transaction); (2) a settled owner is known to the directory — the
    /// entry is busy/queued (ownership mid-transfer) or points at that
    /// owner; (3) an idle directory entry's owner pointer targets a core
    /// that is a settled owner or mid-transaction (eviction in flight);
    /// (4) an idle owned line has no settled S copy at another core
    /// (single-writer/multiple-reader).
    fn check_mesi_line(&self, line: dvs_mem::LineAddr) -> Result<(), String> {
        use crate::mesi::l1::Stable;
        let mut settled_owner: Option<CoreId> = None;
        let mut settled_sharers: Vec<CoreId> = Vec::new();
        for (c, l1) in self.l1s.iter().enumerate() {
            let L1::Mesi(l1) = l1 else {
                unreachable!("protocol mismatch")
            };
            if l1.has_txn(line) {
                continue; // transient: exempt
            }
            match l1.line_state(line) {
                Some(Stable::E) | Some(Stable::M) => {
                    if let Some(prev) = settled_owner {
                        return Err(format!(
                            "line {line}: settled owners at both core {prev} and core {c}"
                        ));
                    }
                    settled_owner = Some(c);
                }
                Some(Stable::S) => settled_sharers.push(c),
                None => {}
            }
        }
        let bank = self.home_bank(line);
        let Bank::Mesi(dir) = &self.banks[bank] else {
            unreachable!("protocol mismatch")
        };
        let busy = dir.busy_or_queued(line);
        if let Some(owner) = settled_owner {
            if !busy && dir.owner(line) != Some(owner) {
                return Err(format!(
                    "line {line}: core {owner} is settled owner but idle directory bank \
                     {bank} says owner {:?}",
                    dir.owner(line)
                ));
            }
            if !busy && !settled_sharers.is_empty() {
                return Err(format!(
                    "line {line}: settled owner {owner} coexists with settled S copies at \
                     cores {settled_sharers:?}"
                ));
            }
        }
        if !busy {
            if let Some(o) = dir.owner(line) {
                let L1::Mesi(l1) = &self.l1s[o] else {
                    unreachable!("protocol mismatch")
                };
                let owns = matches!(l1.line_state(line), Some(Stable::E) | Some(Stable::M));
                if !owns && !l1.has_txn(line) {
                    return Err(format!(
                        "line {line}: idle directory bank {bank} says core {o} owns it, but \
                         core {o} neither holds E/M nor has a transaction"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Full scan of the delivery-boundary invariants: every address any L1
    /// or bank tracks passes its per-line check, and — **conservation** —
    /// every outstanding L1 MSHR entry has something that can resolve it:
    /// an in-flight message for its line, a busy/fetching/queued home-bank
    /// entry, or (DeNovo) a transfer parked in the distributed registration
    /// queue. An MSHR entry with none of those can never complete; that is
    /// a lost-message or lost-wakeup bug caught long before the cycle
    /// limit.
    ///
    /// Runs periodically during chaos runs; also public so tests can point
    /// it at a deliberately corrupted machine.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants(&self) -> Result<(), String> {
        // Per-line settled-state checks over every tracked address.
        let mut lines: std::collections::BTreeSet<dvs_mem::LineAddr> =
            std::collections::BTreeSet::new();
        for l1 in &self.l1s {
            match l1 {
                L1::Mesi(l1) => {
                    lines.extend(l1.resident_lines().map(|(l, _)| l));
                    lines.extend(l1.pending_summaries().iter().map(|(l, _)| *l));
                }
                L1::Dnv(l1) => {
                    lines.extend(l1.registered_words().map(|w| w.line()));
                    lines.extend(l1.pending_summaries().iter().map(|(w, _)| w.line()));
                }
                L1::Gcs(l1) => {
                    lines.extend(l1.registered_words().map(|w| w.line()));
                    lines.extend(l1.pending_summaries().iter().map(|(w, _)| w.line()));
                }
            }
        }
        for bank in &self.banks {
            match bank {
                Bank::Mesi(dir) => lines.extend(dir.entries().map(|(l, _, _)| l)),
                Bank::Dnv(reg) => lines.extend(reg.registrations().map(|(w, _)| w.line())),
                Bank::Gcs(g) => {
                    lines.extend(g.registrations().map(|(w, _)| w.line()));
                    lines.extend(g.classified_words().map(|w| w.line()));
                }
            }
        }
        for &line in &lines {
            self.check_line_invariants(line)?;
        }
        self.verify_conservation()
    }

    /// The conservation half of [`System::verify_invariants`]. In-flight
    /// messages are enumerated from the slot pool's liveness flags, which
    /// the stash/release pair maintains in every mode.
    fn verify_conservation(&self) -> Result<(), String> {
        // In oracle mode the undelivered messages live in the checker's
        // channel queues, not in scheduled events.
        let live_lines: std::collections::HashSet<dvs_mem::LineAddr> = match &self.oracle {
            Some(o) => o.channels.values().flatten().map(Self::msg_line).collect(),
            None => self
                .msg_pool
                .iter()
                .zip(&self.slot_live)
                .filter(|(_, &live)| live)
                .map(|(msg, _)| Self::msg_line(msg))
                .collect(),
        };
        for (c, l1) in self.l1s.iter().enumerate() {
            match l1 {
                L1::Mesi(l1) => {
                    for (line, state) in l1.pending_summaries() {
                        let Bank::Mesi(dir) = &self.banks[self.home_bank(line)] else {
                            unreachable!("protocol mismatch")
                        };
                        if !live_lines.contains(&line) && !dir.busy_or_queued(line) {
                            return Err(format!(
                                "conservation: core {c} transaction on {line} ({state}) has \
                                 no in-flight message and an idle directory entry"
                            ));
                        }
                    }
                }
                L1::Dnv(l1) => {
                    for (word, state) in l1.pending_summaries() {
                        let line = word.line();
                        let Bank::Dnv(reg) = &self.banks[self.home_bank(line)] else {
                            unreachable!("protocol mismatch")
                        };
                        // A parked transfer anywhere on this word keeps the
                        // distributed registration queue moving.
                        let parked = self.l1s.iter().any(|o| {
                            let L1::Dnv(o) = o else {
                                unreachable!("protocol mismatch")
                            };
                            o.has_parked_xfer(word)
                        });
                        if !live_lines.contains(&line) && !reg.line_busy(line) && !parked {
                            return Err(format!(
                                "conservation: core {c} transaction on {word} ({state}) has \
                                 no in-flight message, idle registry line, and no parked \
                                 transfer"
                            ));
                        }
                    }
                }
                L1::Gcs(l1) => {
                    for (word, state) in l1.pending_summaries() {
                        let line = word.line();
                        let Bank::Gcs(bank) = &self.banks[self.home_bank(line)] else {
                            unreachable!("protocol mismatch")
                        };
                        // A parked transfer or parked recall on this word
                        // keeps the handshake moving once the local
                        // transaction completes.
                        let parked = self.l1s.iter().any(|o| {
                            let L1::Gcs(o) = o else {
                                unreachable!("protocol mismatch")
                            };
                            o.has_parked_xfer(word) || o.has_parked_recall(word)
                        });
                        if !live_lines.contains(&line) && !bank.line_busy(line) && !parked {
                            return Err(format!(
                                "conservation: core {c} transaction on {word} ({state}) has \
                                 no in-flight message, an idle bank line, and no parked \
                                 transfer or recall"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The home L2 bank of a line.
    fn home_bank(&self, line: dvs_mem::LineAddr) -> usize {
        (line.raw() % self.banks.len() as u64) as usize
    }

    // --- stall forensics ---------------------------------------------------

    /// Snapshots the machine for a [`SimError::Deadlock`] /
    /// [`SimError::CycleLimit`] report.
    fn stall_report(&self) -> Box<StallReport> {
        let mut report = StallReport::default();
        let mut addrs: std::collections::BTreeSet<dvs_mem::LineAddr> =
            std::collections::BTreeSet::new();
        for (i, core) in self.cores.iter().enumerate() {
            let line = match &core.status {
                Status::Halted => continue,
                Status::Ready => format!("core {i}: ready (event pending)"),
                Status::BlockedMem { req, issued } => {
                    addrs.insert(req.addr.word().line());
                    format!(
                        "core {i}: blocked on memory at {} since cycle {issued}",
                        req.addr
                    )
                }
                Status::Watching { req, since } => {
                    addrs.insert(req.addr.word().line());
                    format!("core {i}: spin-watching {} since cycle {since}", req.addr)
                }
                Status::Reissue { req, after_backoff } => {
                    addrs.insert(req.addr.word().line());
                    format!(
                        "core {i}: waiting to re-issue {} (after_backoff={after_backoff})",
                        req.addr
                    )
                }
                Status::DelaySleep => format!("core {i}: in a timed delay"),
                Status::PendingFence => format!("core {i}: re-checking a fence"),
                Status::FenceWait { since } => format!(
                    "core {i}: fence-waiting on {} outstanding stores since cycle {since}",
                    core.outstanding_stores
                ),
                Status::Dead => format!("core {i}: dead (failed assertion)"),
                Status::DepWait { woken } => {
                    let at = match &self.fronts {
                        Fronts::Trace { cores, .. } => cores[i].position(),
                        Fronts::Vm(_) => 0,
                    };
                    format!(
                        "core {i}: trace replay parked on recorded sync order \
                         (op {at}, woken={woken})"
                    )
                }
            };
            report.cores.push(line);
        }
        for (c, l1) in self.l1s.iter().enumerate() {
            match l1 {
                L1::Mesi(l1) => {
                    for (line, state) in l1.pending_summaries() {
                        addrs.insert(line);
                        report.l1_pending.push(format!("core {c}: {line} {state}"));
                    }
                }
                L1::Dnv(l1) => {
                    for (word, state) in l1.pending_summaries() {
                        addrs.insert(word.line());
                        report.l1_pending.push(format!("core {c}: {word} {state}"));
                    }
                }
                L1::Gcs(l1) => {
                    for (word, state) in l1.pending_summaries() {
                        addrs.insert(word.line());
                        report.l1_pending.push(format!("core {c}: {word} {state}"));
                    }
                    if let Some(word) = l1.remote_watch_word() {
                        addrs.insert(word.line());
                    }
                }
            }
        }
        for &line in &addrs {
            match &self.banks[self.home_bank(line)] {
                Bank::Mesi(dir) => report.l2_state.push(dir.describe_line(line)),
                Bank::Dnv(reg) => {
                    for word in line.words() {
                        if let Some(desc) = reg.describe_word(word) {
                            report.l2_state.push(desc);
                        }
                    }
                }
                Bank::Gcs(g) => {
                    for word in line.words() {
                        if let Some(desc) = g.describe_word(word) {
                            report.l2_state.push(desc);
                        }
                    }
                }
            }
        }
        let mut deliveries: Vec<Event> = self
            .forensics
            .snapshot()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::Delivery { .. }))
            .collect();
        deliveries.sort_by_key(|e| match e.kind {
            EventKind::Delivery { ordinal, .. } => ordinal,
            _ => 0,
        });
        for e in deliveries {
            let EventKind::Delivery { msg, ordinal } = e.kind else {
                continue;
            };
            report.recent_messages.push(format!(
                "cycle {}: to {}[{}]: {} on line {:#x} (delivery #{ordinal})",
                e.cycle,
                e.component.label(),
                e.node,
                msg,
                e.addr
            ));
        }
        report.into()
    }

    /// Reads the architecturally-current value of a word after a run,
    /// resolving through registry/directory state and L1 copies.
    pub fn read_word(&self, addr: Addr) -> u64 {
        let word = addr.word();
        let bank = (word.line().raw() % self.banks.len() as u64) as usize;
        match &self.banks[bank] {
            Bank::Dnv(reg) => match reg.word(word) {
                Some(crate::denovo::registry::RegWord::Valid(v)) => v,
                Some(crate::denovo::registry::RegWord::Registered(c)) => {
                    let L1::Dnv(l1) = &self.l1s[c] else {
                        unreachable!("protocol mismatch")
                    };
                    l1.peek_registered(word)
                        .expect("registry points at a core that holds the word")
                }
                None => self.memory.read_word(word),
            },
            Bank::Gcs(g) => match g.word(word) {
                Some(crate::denovo::registry::RegWord::Valid(v)) => v,
                Some(crate::denovo::registry::RegWord::Registered(c)) => {
                    let L1::Gcs(l1) = &self.l1s[c] else {
                        unreachable!("protocol mismatch")
                    };
                    l1.peek_registered(word)
                        .expect("registry points at a core that holds the word")
                }
                None => self.memory.read_word(word),
            },
            Bank::Mesi(dir) => {
                if let Some(owner) = dir.owner(word.line()) {
                    let L1::Mesi(l1) = &self.l1s[owner] else {
                        unreachable!("protocol mismatch")
                    };
                    if let Some(v) = l1.peek_word(word) {
                        return v;
                    }
                }
                if let Some(data) = dir.peek_line(word.line()) {
                    data[word.index_in_line()]
                } else {
                    self.memory.read_word(word)
                }
            }
        }
    }

    // --- event handlers ----------------------------------------------------

    fn deliver(&mut self, ep: Endpoint, msg: Msg) {
        match ep {
            Endpoint::L1(i) => {
                let mut actions = self.take_actions();
                match (&mut self.l1s[i], msg) {
                    (L1::Mesi(l1), Msg::Mesi(m)) => l1.on_msg(m, &mut actions),
                    (L1::Dnv(l1), Msg::Dnv(m)) => l1.on_msg(m, &mut actions),
                    (L1::Gcs(l1), Msg::Dnv(m)) => l1.on_msg(m, &mut actions),
                    (L1::Gcs(l1), Msg::Gcs(m)) => l1.on_gcs(m, &mut actions),
                    (_, other) => {
                        self.violation(format!("L1 {i} got a foreign message {other:?}"));
                        return;
                    }
                }
                self.apply_actions(ep, self.cfg.latency.remote_l1, actions);
            }
            Endpoint::Bank(b) => {
                let mut actions = self.take_actions();
                match (&mut self.banks[b], msg) {
                    (Bank::Mesi(d), Msg::Mesi(m)) => d.on_msg(m, &mut actions),
                    (Bank::Dnv(r), Msg::Dnv(m)) => r.on_msg(m, &mut actions),
                    (Bank::Mesi(d), Msg::MemData { line, data, .. }) => {
                        d.on_mem_data(line, data, &mut actions)
                    }
                    (Bank::Dnv(r), Msg::MemData { line, data, .. }) => {
                        r.on_mem_data(line, data, &mut actions)
                    }
                    (Bank::Gcs(g), Msg::MemData { line, data, .. }) => {
                        g.on_mem_data(line, data, &mut actions)
                    }
                    (Bank::Gcs(g), m @ (Msg::Dnv(_) | Msg::Gcs(_))) => g.on_msg(m, &mut actions),
                    (_, other) => {
                        self.violation(format!("bank {b} got a foreign message {other:?}"));
                        return;
                    }
                }
                self.apply_actions(ep, self.cfg.latency.l2_access, actions);
            }
            Endpoint::Mem(node) => match msg {
                Msg::MemRead { line, bank, class } => {
                    let data = self.memory.read_line(line);
                    self.send_msg(
                        node,
                        Endpoint::Bank(bank),
                        Msg::MemData { line, data, class },
                        self.cfg.latency.dram,
                    );
                }
                Msg::MemWrite { line, data, mask } => {
                    self.memory.write_line_masked(line, &data, mask);
                }
                other => {
                    self.violation(format!("memory controller {node} got {other:?}"));
                }
            },
        }
    }

    /// Records a protocol violation; the event loop aborts the run with
    /// [`SimError::ProtocolViolation`] after the current event. The detail
    /// is stamped with the delivery ordinal so a violation can be lined up
    /// against the message ring and trace streams.
    fn violation(&mut self, detail: String) {
        // Keep the first violation: later ones are usually fallout.
        if self.error.is_none() {
            self.error = Some(SimError::ProtocolViolation {
                detail: format!("[delivery #{}] {detail}", self.deliveries),
            });
        }
    }

    fn node_of(&self, ep: Endpoint) -> NodeId {
        match ep {
            Endpoint::L1(i) => i,
            Endpoint::Bank(b) => b,
            Endpoint::Mem(n) => n,
        }
    }

    /// Pops a recycled action buffer (or allocates the pool's next one).
    fn take_actions(&mut self) -> Vec<Action> {
        self.action_scratch.pop().unwrap_or_default()
    }

    fn apply_actions(&mut self, from: Endpoint, send_delay: Cycle, mut actions: Vec<Action>) {
        let src = self.node_of(from);
        'apply: for a in actions.drain(..) {
            match a {
                Action::Send { to, msg } => self.send_msg(src, to, msg, send_delay),
                Action::Local { delay, msg } => {
                    if let Some(o) = &mut self.oracle {
                        // Retries get their own checker-chosen lane: draining
                        // them eagerly could livelock an install-retry loop.
                        o.channels
                            .entry(ChannelKey::Local(from))
                            .or_default()
                            .push_back(msg);
                        continue;
                    }
                    let slot = self.stash(msg);
                    self.sched.schedule_in(delay, Ev::Deliver(from, slot));
                }
                Action::CoreDone { value } => {
                    let Endpoint::L1(i) = from else {
                        self.violation(format!("CoreDone from non-L1 endpoint {from:?}"));
                        break 'apply;
                    };
                    self.core_done(i, value);
                }
                Action::StoresDone { count } => {
                    let Endpoint::L1(i) = from else {
                        self.violation(format!("StoresDone from non-L1 endpoint {from:?}"));
                        break 'apply;
                    };
                    self.stores_done(i, count);
                }
                Action::SpinWake => {
                    let Endpoint::L1(i) = from else {
                        self.violation(format!("SpinWake from non-L1 endpoint {from:?}"));
                        break 'apply;
                    };
                    self.spin_wake(i);
                }
                Action::Violation { detail } => {
                    self.violation(format!("{from:?}: {detail}"));
                    break 'apply;
                }
            }
        }
        // Violations above stop processing (remaining actions are dropped,
        // matching the pre-pool early returns); the buffer is recycled
        // either way.
        actions.clear();
        self.action_scratch.push(actions);
    }

    /// Parks an outbound message in the slot pool until its `Deliver` event
    /// fires. Slots are recycled through the free list, and liveness is
    /// tracked unconditionally: [`System::release_slot`] is the single
    /// other owner of a slot's lifecycle.
    fn stash(&mut self, msg: Msg) -> MsgSlot {
        match self.free_slots.pop() {
            Some(slot) => {
                self.msg_pool[slot] = msg;
                self.slot_live[slot] = true;
                slot
            }
            None => {
                self.msg_pool.push(msg);
                self.slot_live.push(true);
                self.msg_pool.len() - 1
            }
        }
    }

    /// Returns a delivered message's slot to the free list.
    fn release_slot(&mut self, slot: MsgSlot) {
        debug_assert!(self.slot_live[slot], "slot {slot} delivered twice");
        self.slot_live[slot] = false;
        self.free_slots.push(slot);
    }

    fn send_msg(&mut self, src: NodeId, to: Endpoint, msg: Msg, extra_delay: Cycle) {
        if let Some(o) = &mut self.oracle {
            // Oracle mode: no network timing; the checker picks delivery
            // order, constrained only by per-channel FIFO.
            o.channels
                .entry(ChannelKey::Net(src, to))
                .or_default()
                .push_back(msg);
            return;
        }
        let dst = self.node_of(to);
        let inject = self.sched.now() + extra_delay;
        let d = self.net.send(inject, src, dst, msg.flits());
        self.traffic.record(msg.class(), d.crossings);
        let arrive = match &mut self.injector {
            Some(inj) => inj.perturb(src, to, d.arrive),
            None => d.arrive,
        };
        let slot = self.stash(msg);
        self.sched.schedule_at(arrive, Ev::Deliver(to, slot));
    }

    // --- core scheduling -----------------------------------------------------

    fn attr(&mut self, i: CoreId, comp: TimeComponent, cycles: Cycle) {
        if cycles > 0 {
            self.cores[i].breakdown.add_cycles(comp, cycles);
        }
    }

    fn exec_comp(&self, i: CoreId) -> TimeComponent {
        match &self.fronts {
            Fronts::Vm(ts) => match ts[i].phase() {
                PhaseChange::Normal => TimeComponent::Compute,
                PhaseChange::NonSynch => TimeComponent::NonSynch,
                PhaseChange::BarrierWait => TimeComponent::BarrierStall,
            },
            // Replay carries no phase annotations; everything local is
            // compute (per-component breakdowns belong to the recording).
            Fronts::Trace { .. } => TimeComponent::Compute,
        }
    }

    fn stall_comp(&self, i: CoreId) -> TimeComponent {
        match &self.fronts {
            Fronts::Vm(ts) => match ts[i].phase() {
                PhaseChange::BarrierWait => TimeComponent::BarrierStall,
                _ => TimeComponent::MemoryStall,
            },
            Fronts::Trace { .. } => TimeComponent::MemoryStall,
        }
    }

    fn step_core(&mut self, i: CoreId) {
        debug_assert!(matches!(self.cores[i].status, Status::Ready));
        let mut local: Cycle = 0;
        loop {
            let step = match &mut self.fronts {
                Fronts::Vm(ts) => TraceStep::Run(ts[i].step()),
                Fronts::Trace { cores, board } => cores[i].step(board),
            };
            let eff = match step {
                TraceStep::Run(eff) => eff,
                TraceStep::DepWait => {
                    // Replay: the next op is gated on the recorded sync
                    // order. Park; a sync completion on the gating word
                    // wakes every parked core (wake-on-increment, so the
                    // oracle drain terminates without polling).
                    let comp = self.exec_comp(i);
                    self.attr(i, comp, local);
                    self.cores[i].status = Status::DepWait { woken: false };
                    return;
                }
            };
            match eff {
                Effect::Retired => {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.retired(i);
                    }
                    local += 1;
                    if local >= MAX_BATCH {
                        let comp = self.exec_comp(i);
                        self.attr(i, comp, local);
                        self.sched.schedule_in(local, Ev::Step(i));
                        return;
                    }
                }
                Effect::Mem(req) => {
                    if local > 0 {
                        let comp = self.exec_comp(i);
                        self.attr(i, comp, local);
                        self.cores[i].status = Status::Reissue {
                            req,
                            after_backoff: false,
                        };
                        self.sched.schedule_in(local, Ev::Resume(i));
                        return;
                    }
                    if self.issue_mem(i, req, false) {
                        // Hit or accepted store: keep executing from +1.
                        return;
                    }
                    return;
                }
                Effect::Delay { cycles, comp } => {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.delayed(i, cycles);
                    }
                    let exec = self.exec_comp(i);
                    self.attr(i, exec, local + 1);
                    // Inside an attribution phase the whole delay belongs to
                    // the phase (dummy compute, barrier wait); otherwise to
                    // the delay's own component (sw backoff, modelled work).
                    let delay_comp = match &self.fronts {
                        Fronts::Vm(ts) => match ts[i].phase() {
                            PhaseChange::Normal => comp,
                            _ => exec,
                        },
                        Fronts::Trace { .. } => comp,
                    };
                    self.attr(i, delay_comp, cycles);
                    self.cores[i].status = Status::DelaySleep;
                    self.sched.schedule_in(local + 1 + cycles, Ev::Resume(i));
                    return;
                }
                Effect::Fence => {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.fence(i);
                    }
                    if self.cores[i].outstanding_stores == 0 {
                        local += 1;
                        continue;
                    }
                    let comp = self.exec_comp(i);
                    self.attr(i, comp, local + 1);
                    self.cores[i].status = Status::PendingFence;
                    self.sched.schedule_in(local + 1, Ev::Resume(i));
                    return;
                }
                Effect::SelfInvalidate(region) => {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.self_inv(i, region);
                    }
                    local += 1;
                    // MESI: self-invalidation instructions are no-ops.
                    match &mut self.l1s[i] {
                        L1::Dnv(l1) => match self.cfg.data_inv {
                            DataInvalidation::StaticRegions => l1.self_invalidate(region),
                            DataInvalidation::Signatures => {
                                // Invalidate every word published since this
                                // core's previous acquire-side invalidation.
                                let cursor = self.cores[i].sig_cursor;
                                l1.self_invalidate_words(&self.sig_log[cursor..]);
                                self.cores[i].sig_cursor = self.sig_log.len();
                            }
                        },
                        // GCS data follows the DeNovo acquire discipline;
                        // the signature log is a DeNovo-only mechanism, so
                        // GCS always invalidates by static region.
                        L1::Gcs(l1) => l1.self_invalidate(region),
                        L1::Mesi(_) => {}
                    }
                }
                Effect::Mark(m) => {
                    let cycle = self.sched.now() + local;
                    self.tel.emit(|| Event {
                        cycle,
                        node: i as u32,
                        component: Component::Core,
                        addr: 0,
                        kind: EventKind::Mark(m),
                    });
                }
                Effect::Halted => {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.halt(i);
                    }
                    let comp = self.exec_comp(i);
                    self.attr(i, comp, local);
                    self.cores[i].status = Status::Halted;
                    self.finished += 1;
                    self.finish_time = self.finish_time.max(self.sched.now() + local);
                    return;
                }
                Effect::Failed { pc, msg } => {
                    self.cores[i].status = Status::Dead;
                    self.error = Some(SimError::KernelAssert { core: i, pc, msg });
                    return;
                }
            }
        }
    }

    fn resume_core(&mut self, i: CoreId) {
        let status = std::mem::replace(&mut self.cores[i].status, Status::Ready);
        match status {
            Status::Reissue { req, after_backoff } => {
                if self.issue_mem(i, req, after_backoff) {
                    // done; issue_mem scheduled the continuation
                }
            }
            Status::DelaySleep => self.step_core(i),
            // Replay: re-examine the gated op; if the board still blocks
            // it the core simply re-parks.
            Status::DepWait { .. } => self.step_core(i),
            Status::PendingFence => {
                if self.cores[i].outstanding_stores == 0 {
                    self.step_core(i);
                } else {
                    let now = self.sched.now();
                    self.stalls.begin(i, StallClass::Fence, now);
                    self.cores[i].status = Status::FenceWait { since: now };
                }
            }
            other => {
                self.violation(format!("core {i} resumed in state {other:?}"));
            }
        }
    }

    /// Signature-mode bookkeeping at synchronization-access completion:
    /// releases (sync stores and RMWs — an RMW is both acquire and release)
    /// publish the core's accumulated writes to the global log, making them
    /// visible to every later acquire-side invalidation.
    fn note_sync_completion(&mut self, i: CoreId, req: &MemRequest) {
        if self.cfg.data_inv != DataInvalidation::Signatures || !self.cfg.protocol.is_denovo() {
            return;
        }
        match req.kind {
            dvs_mem::AccessKind::SyncStore { .. } | dvs_mem::AccessKind::SyncRmw(_) => {
                let writes = std::mem::take(&mut self.cores[i].cs_writes);
                self.sig_log.extend(writes);
            }
            _ => {}
        }
    }

    /// Routes a blocking-access completion to the core's front-end: VM
    /// threads take the loaded value into a register; replay cores
    /// validate it against the recording and advance the sync-ordering
    /// board, waking parked cores when it moves.
    fn complete_front(&mut self, i: CoreId, req: &MemRequest, value: u64) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.mem_complete(i, req, value);
        }
        let advanced = match &mut self.fronts {
            Fronts::Vm(ts) => {
                ts[i].complete_load(req.dst, value);
                Ok(false)
            }
            Fronts::Trace { cores, board } => cores[i].complete(value, board),
        };
        match advanced {
            Ok(true) => self.wake_dep_waiters(),
            Ok(false) => {}
            Err(msg) => self.violation(format!("core {i}: {msg}")),
        }
    }

    /// Replay: schedule a re-examination of every core parked on the
    /// sync-ordering board. Parked cores that are still gated re-park, so
    /// spurious wakes are harmless; `woken` dedups the scheduling.
    fn wake_dep_waiters(&mut self) {
        for i in 0..self.cores.len() {
            if let Status::DepWait { woken } = &mut self.cores[i].status {
                if !*woken {
                    *woken = true;
                    self.sched.schedule_in(1, Ev::Resume(i));
                }
            }
        }
    }

    /// Issues a memory request to the core's L1. Returns true if the core
    /// was put back on the ready path (hit / accepted store), false if it
    /// blocked.
    fn issue_mem(&mut self, i: CoreId, req: MemRequest, after_backoff: bool) -> bool {
        let mut actions = self.take_actions();
        let res = match &mut self.l1s[i] {
            L1::Mesi(l1) => l1.core_request(&req, &mut actions),
            L1::Dnv(l1) => l1.core_request(&req, after_backoff, &mut actions),
            L1::Gcs(l1) => l1.core_request(&req, &mut actions),
        };
        self.apply_actions(Endpoint::L1(i), 0, actions);
        self.record_access(i, &req, &res);
        if self.cfg.data_inv == DataInvalidation::Signatures
            && self.cfg.protocol.is_denovo()
            && matches!(req.kind, dvs_mem::AccessKind::DataStore { .. })
            && !matches!(res, IssueResult::Blocked)
        {
            self.cores[i].cs_writes.push(req.addr.word());
        }
        match res {
            IssueResult::Hit { value } => {
                if let Some(spin) = req.spin {
                    let v = value.expect("spin loads return values");
                    if !spin.satisfied(v) {
                        self.start_watch(i, req, v);
                        return true;
                    }
                }
                self.note_sync_completion(i, &req);
                self.complete_front(i, &req, value.unwrap_or(0));
                let comp = self.exec_comp(i);
                self.attr(i, comp, self.cfg.latency.l1_hit);
                self.cores[i].status = Status::Ready;
                self.sched.schedule_in(self.cfg.latency.l1_hit, Ev::Step(i));
                true
            }
            IssueResult::Miss => {
                let now = self.sched.now();
                self.stalls.begin(i, StallClass::Memory, now);
                self.cores[i].status = Status::BlockedMem { req, issued: now };
                false
            }
            IssueResult::StoreAccepted { completed } => {
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.store_accepted(i, &req);
                }
                if !completed {
                    self.cores[i].outstanding_stores += 1;
                }
                let comp = self.exec_comp(i);
                self.attr(i, comp, self.cfg.latency.l1_hit);
                self.cores[i].status = Status::Ready;
                self.sched.schedule_in(self.cfg.latency.l1_hit, Ev::Step(i));
                true
            }
            IssueResult::Backoff { cycles } => {
                self.attr(i, TimeComponent::HwBackoff, cycles);
                let now = self.sched.now();
                self.stalls.span(i, StallClass::Backoff, now, cycles);
                self.tel.emit(|| Event {
                    cycle: now,
                    node: i as u32,
                    component: Component::Core,
                    addr: req.addr.telemetry_key(),
                    kind: EventKind::Backoff { cycles },
                });
                self.cores[i].status = Status::Reissue {
                    req,
                    after_backoff: true,
                };
                self.sched.schedule_in(cycles.max(1), Ev::Resume(i));
                false
            }
            IssueResult::Blocked => {
                self.cores[i].status = Status::Reissue { req, after_backoff };
                if let Some(o) = &mut self.oracle {
                    // Park instead of polling: a blocked access can only
                    // unblock after some delivery, so the checker re-issues
                    // parked cores after each one.
                    o.parked.push(i);
                    return false;
                }
                let comp = self.stall_comp(i);
                self.attr(i, comp, RETRY_CYCLES);
                self.sched.schedule_in(RETRY_CYCLES, Ev::Resume(i));
                false
            }
        }
    }

    fn record_access(&self, i: CoreId, req: &MemRequest, res: &IssueResult) {
        let hit = match res {
            IssueResult::Hit { .. } | IssueResult::StoreAccepted { completed: true } => true,
            IssueResult::Miss | IssueResult::StoreAccepted { completed: false } => false,
            IssueResult::Backoff { .. } | IssueResult::Blocked => return,
        };
        self.tel.emit(|| Event {
            cycle: self.sched.now(),
            node: i as u32,
            component: Component::Core,
            addr: req.addr.telemetry_key(),
            kind: EventKind::Access {
                hit,
                sync: req.kind.is_sync(),
                write: req.kind.may_write(),
            },
        });
    }

    /// Whether a failed spin can sleep on its locally-held copy.
    fn spin_copy_usable(&self, i: CoreId, word: WordAddr) -> bool {
        match &self.l1s[i] {
            L1::Mesi(l1) => l1.word_readable(word),
            L1::Dnv(l1) => l1.word_registered(word),
            L1::Gcs(l1) => l1.word_registered(word),
        }
    }

    /// Parks a failed spin. `seen` is the value the spin just observed —
    /// GCS forwards it to the home bank so a level-triggered remote watch
    /// can fire immediately if the variable already moved on.
    fn start_watch(&mut self, i: CoreId, req: MemRequest, seen: u64) {
        let word = req.addr.word();
        if self.spin_copy_usable(i, word) {
            match &mut self.l1s[i] {
                L1::Mesi(l1) => l1.set_watch(word),
                L1::Dnv(l1) => l1.set_watch(word),
                L1::Gcs(l1) => l1.set_watch(word),
            }
            let now = self.sched.now();
            self.stalls.begin(i, StallClass::Spin, now);
            self.cores[i].status = Status::Watching { req, since: now };
            return;
        }
        // GCS: a spin on a classified word parks in the home bank's waiter
        // set instead of polling — the directory wakes this core with a
        // targeted SyncNotify carrying the new value.
        if matches!(&self.l1s[i], L1::Gcs(l1) if l1.predicts_sync(word)) {
            let mut actions = self.take_actions();
            let L1::Gcs(l1) = &mut self.l1s[i] else {
                unreachable!("matched above")
            };
            l1.start_remote_watch(word, seen, &mut actions);
            self.apply_actions(Endpoint::L1(i), 0, actions);
            let now = self.sched.now();
            self.stalls.begin(i, StallClass::Spin, now);
            self.cores[i].status = Status::Watching { req, since: now };
            return;
        }
        // The copy is already gone (or was never installed): re-issue
        // after the spin-loop overhead.
        let comp = self.exec_comp(i);
        self.attr(i, comp, self.cfg.latency.spin_recheck);
        self.cores[i].status = Status::Reissue {
            req,
            after_backoff: false,
        };
        self.sched
            .schedule_in(self.cfg.latency.spin_recheck, Ev::Resume(i));
    }

    fn core_done(&mut self, i: CoreId, value: Option<u64>) {
        let status = std::mem::replace(&mut self.cores[i].status, Status::Ready);
        let Status::BlockedMem { req, issued } = status else {
            self.violation(format!("core {i} memory completion in state {status:?}"));
            self.cores[i].status = status;
            return;
        };
        let comp = self.stall_comp(i);
        self.stalls.end(i, self.sched.now());
        self.attr(i, comp, self.sched.now() - issued);
        if let Some(spin) = req.spin {
            let v = value.expect("spin loads return values");
            if !spin.satisfied(v) {
                self.start_watch(i, req, v);
                return;
            }
        }
        self.note_sync_completion(i, &req);
        self.complete_front(i, &req, value.unwrap_or(0));
        self.cores[i].status = Status::Ready;
        self.sched.schedule_in(1, Ev::Step(i));
    }

    fn stores_done(&mut self, i: CoreId, count: usize) {
        if self.cores[i].outstanding_stores < count {
            self.violation(format!(
                "core {i}: {count} store completions with only {} outstanding",
                self.cores[i].outstanding_stores
            ));
            return;
        }
        self.cores[i].outstanding_stores -= count;
        if self.cores[i].outstanding_stores == 0 {
            if let Status::FenceWait { since } = self.cores[i].status {
                let comp = self.stall_comp(i);
                let now = self.sched.now();
                self.stalls.end(i, now);
                self.attr(i, comp, now - since);
                self.cores[i].status = Status::Ready;
                self.sched.schedule_in(1, Ev::Step(i));
            }
        }
    }

    fn spin_wake(&mut self, i: CoreId) {
        match &mut self.l1s[i] {
            L1::Mesi(l1) => l1.clear_watch(),
            L1::Dnv(l1) => l1.clear_watch(),
            L1::Gcs(l1) => l1.clear_watch(),
        }
        let status = std::mem::replace(&mut self.cores[i].status, Status::Ready);
        let Status::Watching { req, since } = status else {
            // A wake can race a transition we already made; ignore.
            self.cores[i].status = status;
            return;
        };
        // Spinning on the cached copy counts as compute (the paper: "a large
        // part of compute time is from spinning synchronization read
        // accesses (cache hits)").
        let comp = self.exec_comp(i);
        let now = self.sched.now();
        self.stalls.end(i, now);
        self.attr(i, comp, now - since);
        self.attr(i, comp, self.cfg.latency.spin_recheck);
        self.cores[i].status = Status::Reissue {
            req,
            after_backoff: false,
        };
        self.sched
            .schedule_in(self.cfg.latency.spin_recheck, Ev::Resume(i));
    }

    // --- oracle (model-checking) mode ---------------------------------------

    /// Builds a system in **oracle mode** for the model checker: protocol
    /// messages enqueue into per-channel FIFO queues instead of timed
    /// deliveries, and the caller picks which channel's head message to
    /// deliver next via [`System::oracle_deliver`]. Cores are run eagerly to
    /// quiescence between deliveries (local core steps of different cores
    /// commute, so their interleaving is never a branch point).
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.data_inv` is
    /// [`DataInvalidation::StaticRegions`]: the signature log is global
    /// state shared by all cores, which breaks the delivery-commutativity
    /// argument the checker's partial-order reduction relies on.
    pub fn new_oracle(
        cfg: SystemConfig,
        layout: impl Into<Arc<MemoryLayout>>,
        programs: impl IntoIterator<Item = impl Into<Arc<Program>>>,
    ) -> Self {
        assert_eq!(
            cfg.data_inv,
            DataInvalidation::StaticRegions,
            "oracle mode requires static-region self-invalidation"
        );
        let mut sys = Self::new(cfg, layout, programs);
        sys.oracle = Some(OracleState::default());
        sys.oracle_drain();
        sys
    }

    /// Builds a trace-replay system in **oracle mode**: recorded op
    /// streams drive the untimed protocol stack, the caller picking
    /// deliveries as in [`System::new_oracle`]. Unlike the VM oracle
    /// constructor this does *not* drain eagerly — preload the memory
    /// image first, then call [`System::oracle_start`].
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.data_inv` is
    /// [`DataInvalidation::StaticRegions`] (same restriction as
    /// [`System::new_oracle`]) or if the stream count differs from the
    /// core count.
    pub fn new_oracle_replay(
        cfg: SystemConfig,
        layout: impl Into<Arc<MemoryLayout>>,
        streams: Vec<Arc<Vec<TraceOp>>>,
    ) -> Self {
        assert_eq!(
            cfg.data_inv,
            DataInvalidation::StaticRegions,
            "oracle mode requires static-region self-invalidation"
        );
        let mut sys = Self::new_replay(cfg, layout, streams);
        sys.oracle = Some(OracleState::default());
        sys
    }

    /// Oracle mode: runs the initial core steps to quiescence. A no-op
    /// after the first delivery (every [`System::oracle_deliver`] drains).
    pub fn oracle_start(&mut self) {
        self.oracle_drain();
    }

    /// Oracle mode: runs every scheduled core event (steps, resumes,
    /// delays) to quiescence. No `Deliver` events exist in oracle mode, so
    /// this always terminates: every chain of core events ends in a halt, a
    /// park, a watch, or a memory block.
    fn oracle_drain(&mut self) {
        while let Some((_, ev)) = self.sched.pop() {
            if self.error.is_some() {
                continue; // discard the rest; the error is terminal
            }
            match ev {
                Ev::Step(i) => self.step_core(i),
                Ev::Resume(i) => self.resume_core(i),
                Ev::Deliver(..) => unreachable!("oracle mode schedules no Deliver events"),
            }
        }
    }

    /// Oracle mode: the channels currently holding at least one undelivered
    /// message — the enabled transitions of the current state, in canonical
    /// (sorted) order.
    pub fn oracle_channels(&self) -> Vec<ChannelKey> {
        match &self.oracle {
            Some(o) => o.channels.keys().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Oracle mode: delivers the head message of `key`, re-issues parked
    /// cores, and runs the machine back to quiescence. Returns `false` if
    /// the channel holds no message (the pick was invalid).
    pub fn oracle_deliver(&mut self, key: ChannelKey) -> bool {
        let msg = {
            let Some(o) = &mut self.oracle else {
                return false;
            };
            let Some(q) = o.channels.get_mut(&key) else {
                return false;
            };
            let Some(msg) = q.pop_front() else {
                return false;
            };
            if q.is_empty() {
                // Keep the channel map canonical: no empty queues.
                o.channels.remove(&key);
            }
            msg
        };
        let ep = key.dst();
        self.deliveries += 1;
        let now = self.sched.now();
        self.tel.set_now(now);
        self.note_delivery(now, ep, &msg);
        self.deliver(ep, msg);
        if self.cfg.check_invariants && self.error.is_none() {
            self.check_delivery_invariants(&msg);
        }
        // A delivery is the only thing that can unblock a parked core:
        // re-issue them all (a still-blocked one just re-parks).
        let parked = std::mem::take(&mut self.oracle.as_mut().expect("oracle mode").parked);
        for i in parked {
            if self.error.is_none() {
                self.sched.schedule_in(0, Ev::Resume(i));
            }
        }
        self.oracle_drain();
        true
    }

    /// Whether every thread has halted.
    pub fn all_halted(&self) -> bool {
        self.cores
            .iter()
            .all(|c| matches!(c.status, Status::Halted))
    }

    /// The recorded error (assertion failure or protocol violation), if any.
    pub fn error(&self) -> Option<&SimError> {
        self.error.as_ref()
    }

    /// Builds the deadlock error for the current state — used by the model
    /// checker when the channels drain with threads still running (it
    /// drives deliveries itself instead of calling [`System::run`]).
    pub fn deadlock_error(&self) -> SimError {
        let stuck: Vec<CoreId> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.status, Status::Halted))
            .map(|(i, _)| i)
            .collect();
        SimError::Deadlock {
            stuck,
            report: self.stall_report(),
        }
    }

    /// Canonical fingerprint of the architectural state, for the model
    /// checker's visited set. Includes everything that influences future
    /// behaviour: threads, core statuses (minus timestamps), L1s, banks,
    /// main memory, and undelivered channel contents. Excludes timing,
    /// statistics, and diagnostics, so two states reached by different
    /// schedules compare equal iff their futures are identical.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        match &self.fronts {
            Fronts::Vm(ts) => {
                for t in ts {
                    t.hash(&mut h);
                }
            }
            Fronts::Trace { cores, board } => {
                for c in cores {
                    c.hash_into(&mut h);
                }
                board.hash_into(&mut h);
            }
        }
        for c in &self.cores {
            match &c.status {
                Status::Ready => h.write_u8(0),
                Status::BlockedMem { req, .. } => {
                    h.write_u8(1);
                    req.hash(&mut h);
                }
                Status::Watching { req, .. } => {
                    h.write_u8(2);
                    req.hash(&mut h);
                }
                Status::Reissue { req, after_backoff } => {
                    h.write_u8(3);
                    req.hash(&mut h);
                    after_backoff.hash(&mut h);
                }
                Status::DelaySleep => h.write_u8(4),
                Status::PendingFence => h.write_u8(5),
                Status::FenceWait { .. } => h.write_u8(6),
                Status::Halted => h.write_u8(7),
                Status::Dead => h.write_u8(8),
                Status::DepWait { woken } => {
                    h.write_u8(9);
                    woken.hash(&mut h);
                }
            }
            c.outstanding_stores.hash(&mut h);
            c.cs_writes.hash(&mut h);
            c.sig_cursor.hash(&mut h);
        }
        for l1 in &self.l1s {
            match l1 {
                L1::Mesi(l) => l.hash(&mut h),
                L1::Dnv(l) => l.hash(&mut h),
                L1::Gcs(l) => l.hash(&mut h),
            }
        }
        for bank in &self.banks {
            match bank {
                Bank::Mesi(d) => d.hash(&mut h),
                Bank::Dnv(r) => r.hash(&mut h),
                Bank::Gcs(g) => g.hash(&mut h),
            }
        }
        self.memory.hash(&mut h);
        self.sig_log.hash(&mut h);
        if let Some(o) = &self.oracle {
            for (k, q) in &o.channels {
                k.hash(&mut h);
                h.write_usize(q.len());
                for m in q {
                    m.hash(&mut h);
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use dvs_mem::LayoutBuilder;
    use dvs_stats::TrafficClass;
    use dvs_vm::isa::{Cond, Reg};
    use dvs_vm::Asm;

    fn counter_layout() -> (MemoryLayout, Addr) {
        let mut b = LayoutBuilder::new();
        let r = b.region("sync");
        let c = b.sync_var("counter", r, true);
        (b.build(), c)
    }

    fn run_all_protocols(
        make: impl Fn(usize, usize) -> Program,
        cores: usize,
        check: impl Fn(&System, &RunStats, Protocol),
    ) {
        for proto in Protocol::ALL {
            let (layout, _) = counter_layout();
            let programs = (0..cores).map(|i| make(i, cores)).collect::<Vec<_>>();
            let mut sys = System::new(SystemConfig::small(cores, proto), layout, programs);
            let stats = sys.run().unwrap_or_else(|e| panic!("{proto:?}: {e}"));
            check(&sys, &stats, proto);
        }
    }

    #[test]
    fn single_core_compute_and_store() {
        let (_, counter) = counter_layout();
        for proto in Protocol::ALL {
            let mut a = Asm::new("calc");
            a.movi(Reg(1), counter.raw())
                .movi(Reg(2), 123)
                .store(Reg(2), Reg(1), 0)
                .fence()
                .halt();
            let (l2, _) = counter_layout();
            let mut sys = System::new(SystemConfig::small(1, proto), l2, vec![a.build()]);
            let stats = sys.run().unwrap();
            assert_eq!(sys.read_word(counter), 123, "{proto:?}");
            assert!(stats.cycles > 0);
            assert!(
                stats.traffic.total() == 0,
                "single tile: all same-node traffic"
            );
        }
    }

    #[test]
    fn four_cores_atomic_increment_all_protocols() {
        let (_, counter) = counter_layout();
        run_all_protocols(
            |_i, _n| {
                let mut a = Asm::new("fai");
                a.movi(Reg(1), counter.raw()).movi(Reg(2), 1);
                for _ in 0..25 {
                    a.fai(Reg(3), Reg(1), 0, Reg(2));
                }
                a.halt();
                a.build()
            },
            4,
            |sys, stats, proto| {
                assert_eq!(sys.read_word(counter), 100, "{proto:?}");
                assert!(stats.cycles > 0);
                assert!(stats.traffic.total() > 0);
            },
        );
    }

    #[test]
    fn producer_consumer_spin_all_protocols() {
        let mut b = LayoutBuilder::new();
        let r = b.region("shared");
        let flag = b.sync_var("flag", r, true);
        let data = b.segment("data", 64, r);
        let region = r;
        let make = move |i: usize, _n: usize| {
            if i == 0 {
                let mut a = Asm::new("producer");
                a.movi(Reg(1), data.raw())
                    .movi(Reg(2), 4242)
                    .store(Reg(2), Reg(1), 0)
                    .fence()
                    .movi(Reg(3), flag.raw())
                    .movi(Reg(4), 1)
                    .stores(Reg(4), Reg(3), 0)
                    .halt();
                a.build()
            } else {
                let mut a = Asm::new("consumer");
                a.movi(Reg(3), flag.raw())
                    .movi(Reg(4), 1)
                    .spin_until(Reg(5), Reg(3), 0, Cond::Eq, Reg(4))
                    .self_inv(region)
                    .movi(Reg(1), data.raw())
                    .load(Reg(6), Reg(1), 0)
                    .movi(Reg(7), 4242)
                    .assert_cond(Cond::Eq, Reg(6), Reg(7), "consumer read stale data")
                    .halt();
                a.build()
            }
        };
        for proto in Protocol::ALL {
            let mut lb = LayoutBuilder::new();
            let r2 = lb.region("shared");
            lb.sync_var("flag", r2, true);
            lb.segment("data", 64, r2);
            let programs = (0..4).map(|i| make(i, 4)).collect::<Vec<_>>();
            let mut sys = System::new(SystemConfig::small(4, proto), lb.build(), programs);
            sys.run().unwrap_or_else(|e| panic!("{proto:?}: {e}"));
            for c in 1..4 {
                assert_eq!(sys.thread(c).reg(Reg(6)), 4242, "{proto:?} core {c}");
            }
        }
    }

    #[test]
    fn mesi_has_invalidation_traffic_denovo_does_not() {
        let (_, counter) = counter_layout();
        let make = |_i: usize, _n: usize| {
            let mut a = Asm::new("contend");
            a.movi(Reg(1), counter.raw()).movi(Reg(2), 1);
            for _ in 0..10 {
                // Read-share, then write: classic invalidation pattern.
                a.loads(Reg(3), Reg(1), 0);
                a.fai(Reg(3), Reg(1), 0, Reg(2));
            }
            a.halt();
            a.build()
        };
        let mut inv_by_proto = Vec::new();
        for proto in Protocol::ALL {
            let (layout, _) = counter_layout();
            let programs = (0..4).map(|i| make(i, 4)).collect::<Vec<_>>();
            let mut sys = System::new(SystemConfig::small(4, proto), layout, programs);
            let stats = sys.run().unwrap();
            inv_by_proto.push((proto, stats.traffic.get(TrafficClass::Invalidation)));
            if proto.is_denovo() {
                assert_eq!(
                    stats.traffic.get(TrafficClass::Invalidation),
                    0,
                    "DeNovo must have zero invalidation traffic"
                );
                assert!(
                    stats.traffic.get(TrafficClass::Sync) > 0,
                    "DeNovo sync accesses travel as SYNCH"
                );
            }
        }
        assert!(
            inv_by_proto[0].1 > 0,
            "MESI read-share-then-write must invalidate: {inv_by_proto:?}"
        );
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        // One core spins forever on a flag nobody sets.
        let mut lb = LayoutBuilder::new();
        let r = lb.region("sync");
        let flag = lb.sync_var("flag", r, true);
        let mut a = Asm::new("waiter");
        a.movi(Reg(1), flag.raw())
            .movi(Reg(2), 1)
            .spin_until(Reg(3), Reg(1), 0, Cond::Eq, Reg(2))
            .halt();
        let mut sys = System::new(
            SystemConfig::small(1, Protocol::DeNovoSync0),
            lb.build(),
            vec![a.build()],
        );
        match sys.run() {
            Err(SimError::Deadlock { stuck, report }) => {
                assert_eq!(stuck, vec![0]);
                assert!(
                    report.cores.iter().any(|l| l.starts_with("core 0:")),
                    "report must name the stuck core: {report}"
                );
                assert!(
                    report
                        .cores
                        .iter()
                        .any(|l| l.contains(&format!("{}", flag))),
                    "report must name the watched flag address: {report}"
                );
                assert!(
                    !report.recent_messages.is_empty(),
                    "report must include recent message history"
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn kernel_assert_surfaces_as_error() {
        let (layout, _) = counter_layout();
        let mut a = Asm::new("bad");
        a.movi(Reg(1), 1)
            .movi(Reg(2), 2)
            .assert_cond(Cond::Eq, Reg(1), Reg(2), "intentional")
            .halt();
        let mut sys = System::new(
            SystemConfig::small(1, Protocol::Mesi),
            layout,
            vec![a.build()],
        );
        match sys.run() {
            Err(SimError::KernelAssert {
                core: 0,
                msg: "intentional",
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn time_breakdown_attributes_nonsynch_delay() {
        let (layout, counter) = counter_layout();
        let mut a = Asm::new("delayed");
        a.movi(Reg(1), counter.raw())
            .rand_delay(1400, 1800, TimeComponent::NonSynch)
            .movi(Reg(2), 7)
            .stores(Reg(2), Reg(1), 0)
            .halt();
        let mut sys = System::new(
            SystemConfig::small(1, Protocol::DeNovoSync),
            layout,
            vec![a.build()],
        );
        let stats = sys.run().unwrap();
        let b = stats.breakdown();
        assert!(b.get(TimeComponent::NonSynch) >= 1400);
        assert!(b.get(TimeComponent::Compute) > 0);
    }

    #[test]
    fn verify_coherence_passes_after_clean_runs() {
        for proto in Protocol::ALL {
            let (layout, counter) = counter_layout();
            let make = || {
                let mut a = Asm::new("inc");
                a.movi(Reg(1), counter.raw()).movi(Reg(2), 1);
                for _ in 0..10 {
                    a.fai(Reg(3), Reg(1), 0, Reg(2));
                }
                a.halt();
                a.build()
            };
            let programs = (0..4).map(|_| make()).collect::<Vec<_>>();
            let mut sys = System::new(SystemConfig::small(4, proto), layout, programs);
            sys.run().unwrap();
            sys.verify_coherence()
                .unwrap_or_else(|e| panic!("{proto:?}: {e}"));
        }
    }

    #[test]
    fn verify_coherence_catches_injected_violations() {
        // DeNovo: re-point a registry word at a core that does not hold it.
        let (layout, counter) = counter_layout();
        let make = || {
            let mut a = Asm::new("inc");
            a.movi(Reg(1), counter.raw())
                .movi(Reg(2), 1)
                .fai(Reg(3), Reg(1), 0, Reg(2))
                .halt();
            a.build()
        };
        let mut sys = System::new(
            SystemConfig::small(4, Protocol::DeNovoSync0),
            layout,
            (0..4).map(|_| make()).collect::<Vec<_>>(),
        );
        sys.run().unwrap();
        sys.verify_coherence().expect("clean before corruption");
        // Corrupt: force a bogus registration through the public message
        // interface of a bank that saw the counter's line.
        let word = counter.word();
        let bank = (word.line().raw() % sys.banks.len() as u64) as usize;
        let Bank::Dnv(reg) = &mut sys.banks[bank] else {
            unreachable!()
        };
        let mut scratch = Vec::new();
        // Whoever is registered, re-register to a different core without
        // telling any L1.
        let current = match reg.word(word) {
            Some(crate::denovo::registry::RegWord::Registered(c)) => c,
            _ => {
                // Counter ended Valid at L2; registering core 2 without its
                // L1 knowing is equally inconsistent.
                3
            }
        };
        let thief = (current + 1) % 4;
        reg.on_msg(
            crate::msg::DnvMsg::RegReq {
                word,
                req: thief,
                class: crate::msg::XferClass::SyncRead,
            },
            &mut scratch,
        );
        assert!(
            sys.verify_coherence().is_err(),
            "verifier must flag a registry pointer with no holder"
        );
    }

    #[test]
    fn runtime_invariant_checker_catches_corrupted_registry() {
        // Same corruption as above, but caught by the delivery-boundary
        // invariant checker — which needs no quiescence and returns a
        // description instead of panicking, so chaos runs can abort with a
        // ProtocolViolation naming the bad state.
        let (layout, counter) = counter_layout();
        let make = || {
            let mut a = Asm::new("inc");
            a.movi(Reg(1), counter.raw())
                .movi(Reg(2), 1)
                .fai(Reg(3), Reg(1), 0, Reg(2))
                .halt();
            a.build()
        };
        let mut sys = System::new(
            SystemConfig::small(4, Protocol::DeNovoSync0),
            layout,
            (0..4).map(|_| make()).collect::<Vec<_>>(),
        );
        sys.run().unwrap();
        sys.verify_invariants().expect("clean after a clean run");
        let word = counter.word();
        let bank = (word.line().raw() % sys.banks.len() as u64) as usize;
        let Bank::Dnv(reg) = &mut sys.banks[bank] else {
            unreachable!()
        };
        let current = match reg.word(word) {
            Some(crate::denovo::registry::RegWord::Registered(c)) => c,
            _ => 3,
        };
        let thief = (current + 1) % 4;
        let mut scratch = Vec::new();
        reg.on_msg(
            crate::msg::DnvMsg::RegReq {
                word,
                req: thief,
                class: crate::msg::XferClass::SyncRead,
            },
            &mut scratch,
        );
        let err = sys
            .verify_invariants()
            .expect_err("checker must flag a registry pointer with no holder");
        assert!(
            err.contains("registry points"),
            "unexpected violation detail: {err}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let (_, counter) = counter_layout();
        let make = |_: usize| {
            let mut a = Asm::new("det");
            a.movi(Reg(1), counter.raw()).movi(Reg(2), 1);
            for _ in 0..20 {
                a.fai(Reg(3), Reg(1), 0, Reg(2));
                a.rand_delay(10, 50, TimeComponent::NonSynch);
            }
            a.halt();
            a.build()
        };
        let run = || {
            let (layout, _) = counter_layout();
            let mut sys = System::new(
                SystemConfig::small(4, Protocol::DeNovoSync),
                layout,
                (0..4).map(make).collect::<Vec<_>>(),
            );
            sys.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.events, b.events);
    }

    // --- GCS end-to-end ----------------------------------------------------

    #[test]
    fn gcs_contended_counter_classifies_and_stays_coherent() {
        let (layout, counter) = counter_layout();
        let make = || {
            let mut a = Asm::new("fai");
            a.movi(Reg(1), counter.raw()).movi(Reg(2), 1);
            for _ in 0..25 {
                a.fai(Reg(3), Reg(1), 0, Reg(2));
            }
            a.halt();
            a.build()
        };
        let mut cfg = SystemConfig::small(4, Protocol::Gcs);
        cfg.check_invariants = true;
        let mut sys = System::new(cfg, layout, (0..4).map(|_| make()).collect::<Vec<_>>());
        let stats = sys.run().unwrap();
        assert_eq!(sys.read_word(counter), 100);
        sys.verify_coherence().unwrap();
        sys.verify_invariants().unwrap();
        // Contended sync RMWs must have classified the counter and moved it
        // onto the bank-side update path.
        let word = counter.word();
        let Bank::Gcs(bank) = &sys.banks[(word.line().raw() % 4) as usize] else {
            unreachable!()
        };
        assert!(bank.classified(word), "contended RMW target classifies");
        assert!(bank.recalls() >= 1, "classification recalls the registrant");
        assert_eq!(
            stats.traffic.get(TrafficClass::Invalidation),
            0,
            "GCS sends no invalidations"
        );
        assert!(stats.traffic.get(TrafficClass::Sync) > 0);
    }

    #[test]
    fn gcs_spinners_park_at_the_bank_and_are_notified() {
        let mut b = LayoutBuilder::new();
        let r = b.region("shared");
        let flag = b.sync_var("flag", r, true);
        let data = b.segment("data", 64, r);
        let make = move |i: usize| {
            if i == 0 {
                let mut a = Asm::new("producer");
                a.movi(Reg(1), data.raw())
                    .movi(Reg(2), 777)
                    .store(Reg(2), Reg(1), 0)
                    .fence()
                    .rand_delay(200, 400, TimeComponent::NonSynch)
                    .movi(Reg(3), flag.raw())
                    .movi(Reg(4), 1)
                    .stores(Reg(4), Reg(3), 0)
                    .halt();
                a.build()
            } else {
                let mut a = Asm::new("consumer");
                a.movi(Reg(3), flag.raw())
                    .movi(Reg(4), 1)
                    .spin_until(Reg(5), Reg(3), 0, Cond::Eq, Reg(4))
                    .self_inv(r)
                    .movi(Reg(1), data.raw())
                    .load(Reg(6), Reg(1), 0)
                    .movi(Reg(7), 777)
                    .assert_cond(Cond::Eq, Reg(6), Reg(7), "consumer read stale data")
                    .halt();
                a.build()
            }
        };
        let mut cfg = SystemConfig::small(4, Protocol::Gcs);
        cfg.check_invariants = true;
        let mut sys = System::new(cfg, b.build(), (0..4).map(make).collect::<Vec<_>>());
        sys.run().unwrap();
        sys.verify_coherence().unwrap();
        for c in 1..4 {
            assert_eq!(sys.thread(c).reg(Reg(6)), 777, "core {c}");
        }
        let notifies: u64 = sys
            .banks
            .iter()
            .map(|b| match b {
                Bank::Gcs(g) => g.notifies(),
                _ => unreachable!(),
            })
            .sum();
        assert!(
            notifies >= 1,
            "spinning consumers must be woken by targeted notification"
        );
    }

    #[test]
    fn gcs_skip_update_mutation_loses_increments() {
        let (_, counter) = counter_layout();
        let make = || {
            let mut a = Asm::new("fai");
            a.movi(Reg(1), counter.raw()).movi(Reg(2), 1);
            for _ in 0..10 {
                a.fai(Reg(3), Reg(1), 0, Reg(2));
            }
            a.halt();
            a.build()
        };
        let run = |mutation| {
            let (layout, _) = counter_layout();
            let mut cfg = SystemConfig::small(4, Protocol::Gcs);
            cfg.mutation = mutation;
            let mut sys = System::new(cfg, layout, (0..4).map(|_| make()).collect::<Vec<_>>());
            sys.run().unwrap();
            sys.read_word(counter)
        };
        assert_eq!(run(None), 40, "stock protocol counts correctly");
        assert!(
            run(Some(crate::config::ProtocolMutation::GcsSkipUpdate)) < 40,
            "skip-update must lose increments once the counter classifies"
        );
    }

    #[test]
    fn gcs_drop_notify_mutation_deadlocks_the_spinners() {
        let mut b = LayoutBuilder::new();
        let r = b.region("shared");
        let flag = b.sync_var("flag", r, true);
        let make = move |i: usize| {
            if i == 0 {
                let mut a = Asm::new("producer");
                a.rand_delay(300, 500, TimeComponent::NonSynch)
                    .movi(Reg(3), flag.raw())
                    .movi(Reg(4), 1)
                    .stores(Reg(4), Reg(3), 0)
                    .halt();
                a.build()
            } else {
                let mut a = Asm::new("consumer");
                a.movi(Reg(3), flag.raw())
                    .movi(Reg(4), 1)
                    .spin_until(Reg(5), Reg(3), 0, Cond::Eq, Reg(4))
                    .halt();
                a.build()
            }
        };
        let mut cfg = SystemConfig::small(4, Protocol::Gcs);
        cfg.mutation = Some(crate::config::ProtocolMutation::GcsDropNotify);
        let mut sys = System::new(cfg, b.build(), (0..4).map(make).collect::<Vec<_>>());
        match sys.run() {
            Err(SimError::Deadlock { stuck, .. }) => {
                assert!(!stuck.is_empty(), "some spinner must be stranded");
            }
            other => panic!("dropped notifies must strand the waiters, got {other:?}"),
        }
    }

    #[test]
    fn runtime_checker_catches_corrupted_gcs_waiter_set() {
        // Set a waiter bit for a core that is not remote-watching: the
        // notify-fanout-matches-waiter-set invariant must flag it.
        let mut b = LayoutBuilder::new();
        let r = b.region("sync");
        let flag = b.sync_var("flag", r, true);
        let make = || {
            let mut a = Asm::new("inc");
            a.movi(Reg(1), flag.raw())
                .movi(Reg(2), 1)
                .fai(Reg(3), Reg(1), 0, Reg(2))
                .halt();
            a.build()
        };
        let mut sys = System::new(
            SystemConfig::small(4, Protocol::Gcs),
            b.build(),
            (0..4).map(|_| make()).collect::<Vec<_>>(),
        );
        sys.run().unwrap();
        sys.verify_invariants().expect("clean after a clean run");
        let word = flag.word();
        let seen = sys.read_word(flag);
        let bank = (word.line().raw() % sys.banks.len() as u64) as usize;
        let Bank::Gcs(g) = &mut sys.banks[bank] else {
            unreachable!()
        };
        assert!(g.classified(word), "contended RMW target classifies");
        // Corrupt through the public interface: park a watch for core 2
        // with a stale `seen`, without core 2's L1 arming a remote watch.
        let mut scratch = Vec::new();
        g.on_msg(
            Msg::Gcs(crate::msg::GcsMsg::SyncWatch { word, req: 2, seen }),
            &mut scratch,
        );
        let err = sys
            .verify_invariants()
            .expect_err("checker must flag a waiter bit with no watcher");
        assert!(err.contains("waiter bit"), "unexpected detail: {err}");
    }

    #[test]
    fn gcs_runs_on_non_square_and_large_meshes() {
        use crate::config::{HeteroLinks, MeshShape};
        let (_, counter) = counter_layout();
        let make = || {
            let mut a = Asm::new("fai");
            a.movi(Reg(1), counter.raw())
                .movi(Reg(2), 1)
                .fai(Reg(3), Reg(1), 0, Reg(2))
                .halt();
            a.build()
        };
        for (rows, cols) in [(2u32, 8u32), (16, 8)] {
            let shape = MeshShape::new(rows, cols).unwrap();
            let n = shape.tiles();
            let mut cfg = SystemConfig::meshed(shape, Protocol::Gcs);
            cfg.hetero_links = Some(HeteroLinks {
                seed: 0x11EA,
                max_extra: 5,
            });
            cfg.check_invariants = true;
            let (layout, _) = counter_layout();
            let mut sys = System::new(cfg, layout, (0..n).map(|_| make()).collect::<Vec<_>>());
            sys.run().unwrap_or_else(|e| panic!("{rows}x{cols}: {e}"));
            assert_eq!(sys.read_word(counter), n as u64, "{rows}x{cols}");
            sys.verify_coherence().unwrap();
        }
    }

    #[test]
    fn mismatched_mesh_shape_is_rejected() {
        use crate::config::MeshShape;
        let (layout, _) = counter_layout();
        let mut cfg = SystemConfig::small(4, Protocol::Gcs);
        cfg.mesh = Some(MeshShape::new(2, 8).unwrap());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let programs = (0..4)
                .map(|_| {
                    let mut a = Asm::new("nop");
                    a.halt();
                    a.build()
                })
                .collect::<Vec<_>>();
            System::new(cfg, layout, programs)
        }));
        assert!(result.is_err(), "16-tile mesh on 4 cores must panic");
    }

    #[test]
    fn oracle_random_walk_is_reproducible_from_the_seed_alone() {
        // Satellite property: for every protocol, a seeded random walk over
        // `oracle_channels` — deliveries picked purely by the seed — visits
        // the identical fingerprint sequence on every rebuild.
        let (_, counter) = counter_layout();
        let make = || {
            let mut a = Asm::new("inc");
            a.movi(Reg(1), counter.raw()).movi(Reg(2), 1);
            for _ in 0..3 {
                a.fai(Reg(3), Reg(1), 0, Reg(2));
            }
            a.halt();
            a.build()
        };
        for proto in Protocol::EXTENDED {
            let walk = |seed: u64| {
                let (layout, _) = counter_layout();
                let mut sys = System::new_oracle(
                    SystemConfig::small(4, proto),
                    layout,
                    (0..4).map(|_| make()).collect::<Vec<_>>(),
                );
                let mut rng = dvs_engine::DetRng::new(seed);
                let mut trail = vec![sys.fingerprint()];
                for _ in 0..10_000 {
                    let channels = sys.oracle_channels();
                    if channels.is_empty() {
                        break;
                    }
                    let pick = channels[rng.range(0, channels.len() as u64) as usize];
                    assert!(sys.oracle_deliver(pick));
                    trail.push(sys.fingerprint());
                }
                assert!(sys.all_halted(), "{proto:?}: walk must finish the run");
                assert_eq!(sys.read_word(counter), 12, "{proto:?}");
                trail
            };
            assert_eq!(walk(42), walk(42), "{proto:?}: same seed, same walk");
            // A different seed explores a different interleaving for at
            // least one protocol state (overwhelmingly likely here), but
            // both must converge to the same final answer — checked above.
            let _ = walk(43);
        }
    }
}
