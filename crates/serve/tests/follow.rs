//! `status --follow`: tail a live journal from a separate process and see
//! every durable event — submission, per-cell completions, the final seal —
//! then exit cleanly once the job is done.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs-serve-follow-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dir_arg(dir: &Path) -> String {
    dir.to_string_lossy().into_owned()
}

fn serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dvs-serve"))
        .args(args)
        .output()
        .expect("spawn dvs-serve")
}

/// The follower and the runner race from opposite ends: the follower starts
/// before the journal even exists, the runner is slowed so cells land while
/// the follower is polling, and the follower must exit on its own once the
/// job seals.
#[test]
fn follow_streams_a_live_job_and_exits_when_it_seals() {
    let dir = tmp_dir("live");
    let follower = Command::new(env!("CARGO_BIN_EXE_dvs-serve"))
        .args([
            "status",
            "--dir",
            &dir_arg(&dir),
            "--follow",
            "--poll-ms",
            "10",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn follower");

    let run = serve(&[
        "submit",
        "--dir",
        &dir_arg(&dir),
        "--grid",
        "smoke",
        "--workers",
        "2",
        "--cell-delay-ms",
        "20",
    ]);
    assert!(
        run.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    let out = follower.wait_with_output().expect("follower finishes");
    assert!(
        out.status.success(),
        "follower must exit 0 once the job seals: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let submitted = stdout
        .lines()
        .find(|l| l.ends_with("submitted"))
        .unwrap_or_else(|| panic!("no submission line in:\n{stdout}"));
    assert!(submitted.contains("cells=18"), "smoke grid is 18 cells");
    let oks = stdout
        .lines()
        .filter(|l| l.contains(" ok payload="))
        .count();
    assert_eq!(oks, 18, "every cell completion streams:\n{stdout}");
    assert!(
        stdout.lines().any(|l| l.contains("done digest=")),
        "the final seal streams:\n{stdout}"
    );

    // A second follow over the now-complete journal replays the same
    // events and exits immediately.
    let replay = serve(&["status", "--dir", &dir_arg(&dir), "--follow"]);
    assert!(replay.status.success());
    assert_eq!(
        String::from_utf8_lossy(&replay.stdout),
        stdout,
        "a follow of a sealed journal replays the identical stream"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
