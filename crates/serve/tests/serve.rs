//! Service-level robustness tests: warm caching, the corruption trio,
//! admission control, deadlines, retry exhaustion, and degradation.

use dvs_campaign::ExperimentSpec;
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};
use dvs_serve::{AdmissionError, JobSpec, RetryPolicy, Serve, ServeConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

const FPR: u64 = 0xabcd_1234;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dvs-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> ServeConfig {
    let mut cfg = ServeConfig::new(dir);
    cfg.workers = 2;
    cfg.fingerprint = FPR;
    cfg.sync_journal = false; // tests don't need fsync latency
    cfg.retry = RetryPolicy {
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        ..RetryPolicy::default()
    };
    cfg
}

/// A three-cell campaign job: the TATAS counter on every protocol.
fn counter_job() -> JobSpec {
    let specs = Protocol::ALL
        .iter()
        .map(|&proto| {
            ExperimentSpec::kernel(
                KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
                KernelParams::smoke(4),
                proto,
            )
        })
        .collect();
    JobSpec::Campaign(specs)
}

fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir.join("store/entries"))
        .expect("entries dir")
        .map(|e| e.expect("entry").path())
        .collect();
    files.sort();
    files
}

#[test]
fn warm_rerun_serves_everything_from_cache_with_identical_digest() {
    let dir = tmp_dir("warm");
    let mut serve = Serve::open(config(&dir)).expect("open");
    let id = serve.submit(&counter_job()).expect("submit");
    let cold = serve.run_job(id).expect("run");
    assert_eq!(cold.computed, 3);
    assert_eq!(cold.hits, 0);
    assert_eq!(cold.failed, 0);
    assert!(cold.wall_nanos > 0, "compute time is accounted");

    // A fresh service process, same directory: all hits, same digest, no
    // compute wall-clock.
    let mut serve = Serve::open(config(&dir)).expect("reopen");
    let id = serve.submit(&counter_job()).expect("submit");
    let warm = serve.run_job(id).expect("run");
    assert_eq!(warm.hits, 3);
    assert_eq!(warm.computed, 0);
    assert_eq!(warm.wall_nanos, 0);
    assert_eq!(warm.digest, cold.digest, "cache cannot change results");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corruption_trio_is_quarantined_and_recomputed_byte_identically() {
    let dir = tmp_dir("trio");
    let mut serve = Serve::open(config(&dir)).expect("open");
    let id = serve.submit(&counter_job()).expect("submit");
    let cold = serve.run_job(id).expect("run");
    drop(serve);

    let files = entry_files(&dir);
    assert_eq!(files.len(), 3);
    let originals: Vec<Vec<u8>> = files
        .iter()
        .map(|p| fs::read(p).expect("read entry"))
        .collect();

    // Corrupt each entry a different way.
    // 1) Truncation: chop into the payload.
    fs::write(&files[0], &originals[0][..originals[0].len() - 3]).expect("truncate");
    // 2) Bit flip inside the payload (the payload is the trailing section).
    let mut flipped = originals[1].clone();
    let n = flipped.len();
    flipped[n - 2] ^= 0x40;
    fs::write(&files[1], &flipped).expect("bit-flip");
    // 3) Stale code fingerprint: rewrite the fpr= line in place, as if the
    //    entry had been written by older code at the same key.
    let text = String::from_utf8(originals[2].clone()).expect("utf8 entry");
    let stale = text.replace(&format!("fpr={FPR:016x}"), "fpr=0000000000000001");
    assert_ne!(stale, text, "fpr line must be present to rewrite");
    fs::write(&files[2], stale).expect("stale");

    // Re-run: every entry is detected, quarantined, and recomputed; the
    // digest is byte-identical to the cold run's.
    let mut serve = Serve::open(config(&dir)).expect("reopen");
    let id = serve.submit(&counter_job()).expect("submit");
    let warm = serve.run_job(id).expect("run");
    assert_eq!(warm.hits, 0);
    assert_eq!(warm.computed, 3);
    assert_eq!(warm.digest, cold.digest, "corruption cannot change results");
    assert_eq!(serve.counters().quarantine, 3);

    // The recomputed entries match the originals byte for byte.
    let recomputed = entry_files(&dir);
    assert_eq!(recomputed.len(), 3);
    for (path, original) in recomputed.iter().zip(&originals) {
        assert_eq!(
            &fs::read(path).expect("read recomputed"),
            original,
            "{path:?} must be rewritten byte-identically"
        );
    }

    // The bad entries were preserved for forensics, with their reasons.
    let mut reasons: Vec<String> = fs::read_dir(dir.join("store/quarantine"))
        .expect("quarantine dir")
        .map(|e| {
            let name = e.expect("entry").file_name().into_string().expect("name");
            name.rsplit('.').next().expect("reason suffix").to_owned()
        })
        .collect();
    reasons.sort();
    assert_eq!(reasons, ["corrupt", "stale", "truncated"]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_refuses_jobs_over_the_pending_limit() {
    let dir = tmp_dir("admission");
    let mut cfg = config(&dir);
    cfg.max_pending_jobs = 1;
    let mut serve = Serve::open(cfg).expect("open");
    serve.submit(&counter_job()).expect("first job fits");
    assert_eq!(
        serve.submit(&counter_job()),
        Err(AdmissionError::Busy {
            pending: 1,
            limit: 1
        })
    );
    assert_eq!(
        serve.submit(&JobSpec::Campaign(Vec::new())),
        Err(AdmissionError::Empty)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn expired_deadline_fails_cells_terminally_without_compute() {
    let dir = tmp_dir("deadline");
    let mut cfg = config(&dir);
    cfg.deadline = Some(Duration::ZERO);
    let mut serve = Serve::open(cfg).expect("open");
    let id = serve.submit(&counter_job()).expect("submit");
    let report = serve.run_job(id).expect("run");
    assert_eq!(report.failed, 3);
    assert_eq!(report.computed, 0);
    assert_eq!(serve.counters().deadline, 3);
    let journal = fs::read_to_string(dir.join("journal.log")).expect("journal");
    assert!(journal.contains(" err deadline "), "{journal}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn transient_failures_retry_with_backoff_then_exhaust() {
    let dir = tmp_dir("retry");
    let mut serve = Serve::open(config(&dir)).expect("open");
    // threads = 0 panics in the workload builder on every attempt: a
    // transient classification that never recovers.
    let mut params = KernelParams::smoke(4);
    params.threads = 0;
    let spec = ExperimentSpec::kernel(
        KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
        params,
        Protocol::Mesi,
    );
    let id = serve
        .submit(&JobSpec::Campaign(vec![spec]))
        .expect("submit");
    let report = serve.run_job(id).expect("run");
    assert_eq!(report.failed, 1);
    assert_eq!(report.retries, 2, "3 attempts = 2 retries");
    let journal = fs::read_to_string(dir.join("journal.log")).expect("journal");
    assert!(journal.contains(" err exhausted "), "{journal}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn over_budget_store_sheds_writes_but_keeps_serving() {
    let dir = tmp_dir("budget");
    let mut cfg = config(&dir);
    cfg.store_budget = Some(10); // smaller than any entry
    let mut serve = Serve::open(cfg.clone()).expect("open");
    let id = serve.submit(&counter_job()).expect("submit");
    let first = serve.run_job(id).expect("run");
    assert_eq!(first.computed, 3);
    assert_eq!(first.failed, 0);
    assert_eq!(serve.counters().shed, 3);

    // Nothing was cached, so a re-run recomputes — to the same digest.
    let mut serve = Serve::open(cfg).expect("reopen");
    let id = serve.submit(&counter_job()).expect("submit");
    let second = serve.run_job(id).expect("run");
    assert_eq!(second.hits, 0);
    assert_eq!(second.computed, 3);
    assert_eq!(second.digest, first.digest);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unavailable_store_degrades_to_compute_only() {
    let reference = tmp_dir("degraded-ref");
    let mut serve = Serve::open(config(&reference)).expect("open");
    let id = serve.submit(&counter_job()).expect("submit");
    let want = serve.run_job(id).expect("run").digest;
    drop(serve);

    let dir = tmp_dir("degraded");
    fs::create_dir_all(&dir).expect("mkdir");
    // A *file* where the store directory belongs: Store::open fails, the
    // service degrades to compute-only instead of refusing to start.
    fs::write(dir.join("store"), "not a directory").expect("block store");
    let mut serve = Serve::open(config(&dir)).expect("open degraded");
    let id = serve.submit(&counter_job()).expect("submit");
    let report = serve.run_job(id).expect("run");
    assert_eq!(report.computed, 3);
    assert_eq!(report.failed, 0);
    assert_eq!(report.digest, want, "degradation cannot change results");
    assert_eq!(serve.counters().shed, 3);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&reference);
}

#[test]
fn submitted_but_unrun_job_survives_restart_and_resumes() {
    let dir = tmp_dir("resume");
    let mut serve = Serve::open(config(&dir)).expect("open");
    let id = serve.submit(&counter_job()).expect("submit");
    drop(serve); // "crash" before any cell ran

    let reference = tmp_dir("resume-ref");
    let mut refserve = Serve::open(config(&reference)).expect("open ref");
    let rid = refserve.submit(&counter_job()).expect("submit ref");
    let want = refserve.run_job(rid).expect("run ref").digest;
    drop(refserve);

    let mut serve = Serve::open(config(&dir)).expect("reopen");
    let status = serve.status();
    assert_eq!(status.len(), 1);
    assert_eq!(status[0].pending, 3);
    assert_eq!(status[0].digest, None);
    let reports = serve.resume_all().expect("resume");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].id, id);
    assert_eq!(reports[0].computed, 3);
    assert_eq!(reports[0].digest, want);
    assert!(serve.status()[0].digest.is_some());
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&reference);
}

#[test]
fn metrics_registry_exports_the_counters() {
    let dir = tmp_dir("metrics");
    let mut serve = Serve::open(config(&dir)).expect("open");
    let id = serve.submit(&counter_job()).expect("submit");
    serve.run_job(id).expect("run");
    let m = serve.metrics();
    assert_eq!(m.counter("serve", "cell", "computed"), 3);
    assert_eq!(m.counter("serve", "cache", "miss"), 3);
    assert_eq!(m.counter("serve", "cache", "hit"), 0);
    let _ = fs::remove_dir_all(&dir);
}
