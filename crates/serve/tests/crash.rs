//! The headline robustness test: `kill -9` a service mid-campaign, restart
//! it, and demand the resumed job's final digest be byte-identical to an
//! uninterrupted run — then re-run warm and demand the cache serve it.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs-serve-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dvs-serve"))
        .args(args)
        .output()
        .expect("spawn dvs-serve")
}

/// Pulls `digest=<16 hex>` off a `job=...` summary line.
fn digest_of(output: &Output) -> String {
    let stdout = String::from_utf8_lossy(&output.stdout);
    for line in stdout.lines() {
        if let Some((_, d)) = line.split_once("digest=") {
            return d.trim().to_owned();
        }
    }
    panic!(
        "no digest line in output:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

fn field_of(output: &Output, key: &str) -> u64 {
    let stdout = String::from_utf8_lossy(&output.stdout);
    for line in stdout.lines() {
        if let Some((_, rest)) = line.split_once(&format!("{key}=")) {
            let tok: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            return tok
                .parse()
                .unwrap_or_else(|_| panic!("bad {key} in {line:?}"));
        }
    }
    panic!("no {key} in output: {stdout}");
}

fn dir_arg(dir: &Path) -> String {
    dir.to_string_lossy().into_owned()
}

#[test]
fn sigkill_mid_job_resumes_to_the_uninterrupted_digest() {
    // Reference: an uninterrupted cold run of the same grid elsewhere.
    let ref_dir = tmp_dir("ref");
    let reference = serve(&[
        "submit",
        "--dir",
        &dir_arg(&ref_dir),
        "--grid",
        "smoke",
        "--workers",
        "2",
    ]);
    assert!(
        reference.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let want = digest_of(&reference);

    // Victim: same grid, slowed down so the kill lands mid-job, then
    // SIGKILLed while cells are still pending.
    let dir = tmp_dir("victim");
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvs-serve"))
        .args([
            "submit",
            "--dir",
            &dir_arg(&dir),
            "--grid",
            "smoke",
            "--workers",
            "2",
            "--cell-delay-ms",
            "200",
        ])
        .spawn()
        .expect("spawn victim");
    // Kill as soon as the journal shows the first completed cell: the
    // 200ms-per-cell delay floors the remaining work at well over a
    // second, so the SIGKILL reliably lands with cells still pending.
    let journal = dir.join("journal.log");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "victim never completed a first cell"
        );
        assert!(
            child.try_wait().expect("poll victim").is_none(),
            "the victim finished before it could be killed; raise --cell-delay-ms"
        );
        let done_cells = std::fs::read_to_string(&journal)
            .map(|j| j.lines().filter(|l| l.starts_with("cell ")).count())
            .unwrap_or(0);
        if done_cells >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().expect("SIGKILL"); // Child::kill is SIGKILL on unix
    let status = child.wait().expect("reap");
    assert!(
        !status.success(),
        "the victim must not have finished cleanly"
    );

    // Restart and resume: some cells replay from the journal, the rest
    // compute, and the digest matches the uninterrupted run exactly.
    let resumed = serve(&["resume", "--dir", &dir_arg(&dir), "--workers", "2"]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        digest_of(&resumed),
        want,
        "resumed digest must be byte-identical to the uninterrupted run"
    );
    let computed = field_of(&resumed, "computed");
    let cells = field_of(&resumed, "cells");
    assert!(
        computed < cells,
        "the kill should have landed after some cells completed \
         (computed {computed} of {cells}); if this flakes, raise the delay"
    );

    // Warm re-run on the reference directory: >= 90% served from cache.
    let warm = serve(&[
        "submit",
        "--dir",
        &dir_arg(&ref_dir),
        "--grid",
        "smoke",
        "--workers",
        "2",
    ]);
    assert!(warm.status.success());
    assert_eq!(digest_of(&warm), want);
    let hits = field_of(&warm, "hits");
    assert!(
        hits * 10 >= cells * 9,
        "warm re-run must hit >= 90% ({hits}/{cells})"
    );

    // And the store verifies clean end to end.
    let verify = serve(&["verify-store", "--dir", &dir_arg(&ref_dir)]);
    assert!(verify.status.success());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
