//! The content-addressed result store.
//!
//! One file per cell result under `<dir>/entries/`, named by the FNV-1a
//! digest of `(cell token, code fingerprint)`. Entries are self-describing
//! and self-verifying:
//!
//! ```text
//! dvs-cell v1
//! token=<cell token>
//! fpr=<code fingerprint, 16 hex>
//! payload_fnv=<FNV-1a of the payload, 16 hex>
//! payload_len=<bytes>
//! --
//! <payload>
//! ```
//!
//! Writes are crash-safe (temp file, fsync, atomic rename). Reads re-check
//! everything: a malformed header, a stale fingerprint, a short payload, or
//! a digest mismatch *quarantines* the entry — it is moved (never silently
//! deleted) into `<dir>/quarantine/` for forensics, and the caller sees a
//! miss, recomputes, and overwrites. The store never fails a job: an
//! unavailable directory or an exhausted size budget sheds the write and
//! the service keeps serving compute.

use dvs_campaign::{fnv1a, fnv1a_str, FNV_OFFSET};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic first line of every entry file.
const MAGIC: &str = "dvs-cell v1";

/// The outcome of a store lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The entry existed, verified clean, and matches the current code
    /// fingerprint; the payload is returned exactly as stored.
    Hit(String),
    /// No entry (or the store is degraded/disabled).
    Miss,
    /// An entry existed but failed verification and was quarantined; the
    /// reason is one of `malformed`, `stale`, `truncated`, `corrupt`.
    Quarantined(&'static str),
}

/// The outcome of a store write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// Durably written.
    Stored,
    /// Shed — the service keeps running without the cache write. The reason
    /// is one of `store-unavailable`, `size-budget`, `io-error`.
    Shed(&'static str),
}

/// What [`Store::verify_all`] found.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Entries scanned.
    pub checked: usize,
    /// Entries that verified clean.
    pub ok: usize,
    /// `(file name, reason)` for every quarantined entry.
    pub quarantined: Vec<(String, String)>,
}

/// What [`Store::gc`] removed.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Entries removed because their fingerprint is not current.
    pub removed_stale: usize,
    /// Entries removed to get back under the size budget.
    pub removed_budget: usize,
    /// Entry bytes remaining after collection.
    pub remaining_bytes: u64,
}

/// A content-addressed result store rooted at a directory, or a disabled
/// placeholder when the directory is unavailable (degraded mode: every
/// lookup misses, every write sheds).
#[derive(Debug)]
pub struct Store {
    entries: PathBuf,
    quarantine: PathBuf,
    fingerprint: u64,
    budget: Option<u64>,
    bytes: u64,
    quarantine_seq: u64,
    enabled: bool,
}

/// The store key for a cell token under a code fingerprint.
pub fn cell_key(token: &str, fingerprint: u64) -> u64 {
    let mut h = fnv1a_str(FNV_OFFSET, token);
    for byte in fingerprint.to_le_bytes() {
        h = fnv1a(h, byte);
    }
    h
}

/// FNV-1a digest of a payload, the integrity check stored next to it.
pub fn payload_fnv(payload: &str) -> u64 {
    fnv1a_str(FNV_OFFSET, payload)
}

impl Store {
    /// Opens (creating if needed) the store under `dir`, keyed by
    /// `fingerprint`, with an optional entry-bytes budget.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or scanning the directories. Callers that
    /// want degradation instead of failure fall back to
    /// [`Store::disabled`].
    pub fn open(dir: &Path, fingerprint: u64, budget: Option<u64>) -> std::io::Result<Store> {
        let entries = dir.join("entries");
        let quarantine = dir.join("quarantine");
        fs::create_dir_all(&entries)?;
        fs::create_dir_all(&quarantine)?;
        let mut bytes = 0;
        for entry in fs::read_dir(&entries)? {
            bytes += entry?.metadata()?.len();
        }
        Ok(Store {
            entries,
            quarantine,
            fingerprint,
            budget,
            bytes,
            quarantine_seq: 0,
            enabled: true,
        })
    }

    /// A degraded store: every lookup misses, every write sheds. Used when
    /// the store directory cannot be opened — the service keeps computing.
    pub fn disabled() -> Store {
        Store {
            entries: PathBuf::new(),
            quarantine: PathBuf::new(),
            fingerprint: 0,
            budget: None,
            bytes: 0,
            quarantine_seq: 0,
            enabled: false,
        }
    }

    /// Whether this store is live (false in degraded mode).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current entry bytes on disk.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn entry_path(&self, token: &str) -> PathBuf {
        self.entries
            .join(format!("{:016x}.cell", cell_key(token, self.fingerprint)))
    }

    /// Looks `token` up, verifying integrity and fingerprint currency.
    /// Never errors: any unreadable or unverifiable entry is quarantined
    /// and reported as such, so the caller recomputes.
    pub fn get(&mut self, token: &str) -> Lookup {
        if !self.enabled {
            return Lookup::Miss;
        }
        let path = self.entry_path(token);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            Err(_) => return self.quarantine_entry(&path, "malformed"),
        };
        match parse_entry(&raw, self.fingerprint) {
            Ok(entry) if entry.token == token => Lookup::Hit(entry.payload),
            // A key collision between distinct tokens: not corruption, but
            // not this cell's result either.
            Ok(_) => Lookup::Miss,
            Err(reason) => self.quarantine_entry(&path, reason),
        }
    }

    /// Moves a bad entry into the quarantine directory (never deletes
    /// evidence) and accounts its bytes out of the store.
    fn quarantine_entry(&mut self, path: &Path, reason: &'static str) -> Lookup {
        let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        self.quarantine_seq += 1;
        let dest = self
            .quarantine
            .join(format!("{name}.{}.{reason}", self.quarantine_seq));
        if fs::rename(path, &dest).is_err() {
            // Rename across a broken directory: fall back to removal so the
            // bad entry can at least not be served again.
            let _ = fs::remove_file(path);
        }
        self.bytes = self.bytes.saturating_sub(len);
        Lookup::Quarantined(reason)
    }

    /// Writes `payload` for `token`, durably (temp file + fsync + rename).
    /// Sheds instead of erroring when degraded, over budget, or on I/O
    /// failure.
    pub fn put(&mut self, token: &str, payload: &str) -> PutOutcome {
        if !self.enabled {
            return PutOutcome::Shed("store-unavailable");
        }
        let entry = render_entry(token, self.fingerprint, payload);
        let path = self.entry_path(token);
        let old_len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let new_bytes = self.bytes - old_len + entry.len() as u64;
        if self.budget.is_some_and(|b| new_bytes > b) {
            return PutOutcome::Shed("size-budget");
        }
        let tmp = path.with_extension("tmp");
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(entry.as_bytes())?;
            f.sync_data()?;
            fs::rename(&tmp, &path)
        };
        match write() {
            Ok(()) => {
                self.bytes = new_bytes;
                PutOutcome::Stored
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                PutOutcome::Shed("io-error")
            }
        }
    }

    /// Verifies every entry on disk, quarantining anything that fails.
    pub fn verify_all(&mut self) -> VerifyReport {
        let mut report = VerifyReport::default();
        if !self.enabled {
            return report;
        }
        for path in self.entry_paths() {
            report.checked += 1;
            let verdict = fs::read(&path)
                .map_err(|_| "malformed")
                .and_then(|raw| parse_entry(&raw, self.fingerprint).map(|_| ()));
            match verdict {
                Ok(()) => report.ok += 1,
                Err(reason) => {
                    let name = path
                        .file_name()
                        .unwrap_or_default()
                        .to_string_lossy()
                        .into_owned();
                    self.quarantine_entry(&path, reason);
                    report.quarantined.push((name, reason.to_owned()));
                }
            }
        }
        report
    }

    /// Deletes stale-fingerprint entries, then (if a budget is configured)
    /// deletes further entries in file-name order until under budget.
    pub fn gc(&mut self) -> GcReport {
        let mut report = GcReport::default();
        if !self.enabled {
            return report;
        }
        let mut keep = Vec::new();
        for path in self.entry_paths() {
            let stale = match fs::read(&path) {
                Ok(raw) => matches!(parse_entry(&raw, self.fingerprint), Err("stale")),
                Err(_) => false,
            };
            if stale {
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if fs::remove_file(&path).is_ok() {
                    self.bytes = self.bytes.saturating_sub(len);
                    report.removed_stale += 1;
                    continue;
                }
            }
            keep.push(path);
        }
        if let Some(budget) = self.budget {
            for path in keep {
                if self.bytes <= budget {
                    break;
                }
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if fs::remove_file(&path).is_ok() {
                    self.bytes = self.bytes.saturating_sub(len);
                    report.removed_budget += 1;
                }
            }
        }
        report.remaining_bytes = self.bytes;
        report
    }

    /// Entry files in deterministic (name-sorted) order.
    fn entry_paths(&self) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.entries)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "cell"))
                    .collect()
            })
            .unwrap_or_default();
        paths.sort();
        paths
    }

    /// Number of quarantined files accumulated under this store.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(&self.quarantine)
            .map(|rd| rd.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }
}

/// Renders the durable entry text for a payload.
fn render_entry(token: &str, fingerprint: u64, payload: &str) -> String {
    format!(
        "{MAGIC}\ntoken={token}\nfpr={fingerprint:016x}\npayload_fnv={:016x}\npayload_len={}\n--\n{payload}",
        payload_fnv(payload),
        payload.len(),
    )
}

struct Entry {
    token: String,
    payload: String,
}

/// Parses and fully verifies an entry file. The error is the quarantine
/// reason: `malformed`, `stale`, `truncated`, or `corrupt`.
fn parse_entry(raw: &[u8], fingerprint: u64) -> Result<Entry, &'static str> {
    let text = std::str::from_utf8(raw).map_err(|_| "malformed")?;
    let mut lines = text.splitn(6, '\n');
    let magic = lines.next().ok_or("malformed")?;
    if magic != MAGIC {
        return Err("malformed");
    }
    let token = field(lines.next(), "token=")?;
    let fpr = u64::from_str_radix(field(lines.next(), "fpr=")?, 16).map_err(|_| "malformed")?;
    let stored_fnv =
        u64::from_str_radix(field(lines.next(), "payload_fnv=")?, 16).map_err(|_| "malformed")?;
    let len: usize = field(lines.next(), "payload_len=")?
        .parse()
        .map_err(|_| "malformed")?;
    let rest = lines.next().ok_or("truncated")?;
    let payload = rest.strip_prefix("--\n").ok_or("malformed")?;
    if fpr != fingerprint {
        return Err("stale");
    }
    if payload.len() != len {
        return Err("truncated");
    }
    if payload_fnv(payload) != stored_fnv {
        return Err("corrupt");
    }
    Ok(Entry {
        token: token.to_owned(),
        payload: payload.to_owned(),
    })
}

fn field<'a>(line: Option<&'a str>, prefix: &str) -> Result<&'a str, &'static str> {
    line.and_then(|l| l.strip_prefix(prefix)).ok_or("malformed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dvs-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_then_get_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut store = Store::open(&dir, 7, None).expect("open");
        assert_eq!(store.get("cell-a"), Lookup::Miss);
        assert_eq!(store.put("cell-a", "{ \"x\": 1 }\n"), PutOutcome::Stored);
        assert_eq!(
            store.get("cell-a"),
            Lookup::Hit("{ \"x\": 1 }\n".to_owned())
        );
        // Payloads survive reopen.
        let mut store = Store::open(&dir, 7, None).expect("reopen");
        assert_eq!(
            store.get("cell-a"),
            Lookup::Hit("{ \"x\": 1 }\n".to_owned())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_is_quarantined_on_read() {
        let dir = tmp_dir("stale");
        Store::open(&dir, 1, None).expect("open").put("c", "v\n");
        let mut newer = Store::open(&dir, 2, None).expect("open");
        assert_eq!(newer.get("c"), Lookup::Miss, "different key, no entry");
        // Same key, old fingerprint inside: plant the old-revision entry
        // where the new fingerprint's key points.
        fs::write(newer.entry_path("c"), render_entry("c", 1, "v\n")).expect("plant stale entry");
        assert_eq!(newer.get("c"), Lookup::Quarantined("stale"));
        assert_eq!(newer.quarantined_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_corruption_are_quarantined() {
        let dir = tmp_dir("corrupt");
        let mut store = Store::open(&dir, 7, None).expect("open");
        store.put("c1", "payload one\n");
        store.put("c2", "payload two\n");
        // Truncate c1.
        let p1 = store.entry_path("c1");
        let raw = fs::read(&p1).expect("read");
        fs::write(&p1, &raw[..raw.len() - 4]).expect("truncate");
        assert_eq!(store.get("c1"), Lookup::Quarantined("truncated"));
        // Bit-flip c2's payload (same length).
        let p2 = store.entry_path("c2");
        let mut raw = fs::read(&p2).expect("read");
        let last = raw.len() - 2;
        raw[last] ^= 0x01;
        fs::write(&p2, &raw).expect("flip");
        assert_eq!(store.get("c2"), Lookup::Quarantined("corrupt"));
        assert_eq!(store.quarantined_count(), 2);
        // Both recomputable: a fresh put serves hits again.
        store.put("c1", "payload one\n");
        assert_eq!(store.get("c1"), Lookup::Hit("payload one\n".to_owned()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_budget_sheds_writes_but_keeps_reads() {
        let dir = tmp_dir("budget");
        let mut store = Store::open(&dir, 7, Some(200)).expect("open");
        assert_eq!(store.put("small", "x\n"), PutOutcome::Stored);
        let big = "y".repeat(400);
        assert_eq!(store.put("big", &big), PutOutcome::Shed("size-budget"));
        assert_eq!(store.get("small"), Lookup::Hit("x\n".to_owned()));
        assert_eq!(store.get("big"), Lookup::Miss);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_degrades_to_miss_and_shed() {
        let mut store = Store::disabled();
        assert!(!store.enabled());
        assert_eq!(store.get("any"), Lookup::Miss);
        assert_eq!(store.put("any", "v"), PutOutcome::Shed("store-unavailable"));
        assert_eq!(store.verify_all().checked, 0);
    }

    #[test]
    fn verify_all_sweeps_bad_entries() {
        let dir = tmp_dir("verify");
        let mut store = Store::open(&dir, 7, None).expect("open");
        store.put("good", "ok\n");
        store.put("bad", "soon broken\n");
        let p = store.entry_path("bad");
        let raw = fs::read(&p).expect("read");
        fs::write(&p, &raw[..raw.len() - 3]).expect("truncate");
        let report = store.verify_all();
        assert_eq!(report.checked, 2);
        assert_eq!(report.ok, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].1, "truncated");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_stale_then_enforces_budget() {
        let dir = tmp_dir("gc");
        // Write two entries under fingerprint 1.
        let mut old = Store::open(&dir, 1, None).expect("open");
        old.put("a", "aaa\n");
        old.put("b", "bbb\n");
        // Reopen under fingerprint 2 with fresh entries: old ones are stale.
        let mut mid = Store::open(&dir, 2, None).expect("open");
        mid.put("c", "ccc\n");
        mid.put("d", "ddd\n");
        drop(mid);
        // A third open with a budget: gc drops the stale pair first, then
        // evicts fresh entries until the remainder fits.
        let mut new = Store::open(&dir, 2, Some(120)).expect("open");
        let report = new.gc();
        assert_eq!(report.removed_stale, 2);
        assert!(
            report.removed_budget >= 1,
            "two ~90-byte entries exceed the 120-byte budget"
        );
        assert!(report.remaining_bytes <= 120);
        let _ = fs::remove_dir_all(&dir);
    }
}
