//! `dvs-serve` — the simulation job service's command-line front end.
//!
//! ```text
//! dvs-serve submit --dir D --grid smoke [--no-run] [flags]   campaign grid job
//! dvs-serve submit --dir D --fuzz <start> <count> [--small]  fuzz-hunt job
//! dvs-serve submit --dir D --litmus all                      litmus-sweep job
//! dvs-serve submit --dir D --deep-check <name|all>           model-check job
//!   [--check-mode exact|bits:N|swarm:N] [--check-depth N] [--check-states N]
//! dvs-serve resume --dir D [flags]                           finish unfinished jobs
//! dvs-serve status --dir D                                   one line per job
//! dvs-serve status --dir D --follow [--poll-ms N]            tail the journal live
//! dvs-serve verify-store --dir D                             integrity-check the cache
//! dvs-serve gc --dir D [--budget-bytes N]                    evict stale/over-budget
//! ```
//!
//! Shared flags: `--workers N`, `--deadline-ms N`, `--retries N`,
//! `--budget-bytes N`, `--cell-delay-ms N` (debug: slows each cell so crash
//! tests can land a `kill -9` mid-job), `--no-sync` (skip per-append
//! fsync — faster, crash-unsafe).
//!
//! Each finished job prints one machine-parseable line:
//!
//! ```text
//! job=3 cells=18 hits=18 computed=0 failed=0 retries=0 digest=84d1c8a3b4e5f607
//! ```
//!
//! Exit codes: 0 clean, 1 a cell failed terminally (or `verify-store`
//! quarantined entries), 2 usage or I/O error.

use dvs_campaign::kernel_grid;
use dvs_core::config::Protocol;
use dvs_kernels::{KernelId, LockKind, LockedStruct};
use dvs_serve::{
    DeepCheckMode, JobSpec, JournalEvent, JournalTail, RetryPolicy, Serve, ServeConfig,
};
use dvs_vm::litmus::Litmus;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dvs-serve: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Opts {
    positional: Vec<String>,
    dir: Option<String>,
    grid: Option<String>,
    fuzz: Option<(u64, usize)>,
    litmus: Option<String>,
    deep_check: Option<String>,
    check_mode: Option<String>,
    check_depth: Option<usize>,
    check_states: Option<u64>,
    small: bool,
    no_run: bool,
    no_sync: bool,
    follow: bool,
    poll_ms: Option<u64>,
    workers: Option<usize>,
    deadline_ms: Option<u64>,
    retries: Option<u32>,
    budget_bytes: Option<u64>,
    cell_delay_ms: Option<u64>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        dir: None,
        grid: None,
        fuzz: None,
        litmus: None,
        deep_check: None,
        check_mode: None,
        check_depth: None,
        check_states: None,
        small: false,
        no_run: false,
        no_sync: false,
        follow: false,
        poll_ms: None,
        workers: None,
        deadline_ms: None,
        retries: None,
        budget_bytes: None,
        cell_delay_ms: None,
    };
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => o.dir = Some(value(&mut it, "--dir")?),
            "--grid" => o.grid = Some(value(&mut it, "--grid")?),
            "--fuzz" => {
                let start = value(&mut it, "--fuzz")?
                    .parse()
                    .map_err(|_| "--fuzz needs <start> <count>")?;
                let count = value(&mut it, "--fuzz")?
                    .parse()
                    .map_err(|_| "--fuzz needs <start> <count>")?;
                o.fuzz = Some((start, count));
            }
            "--litmus" => o.litmus = Some(value(&mut it, "--litmus")?),
            "--deep-check" => o.deep_check = Some(value(&mut it, "--deep-check")?),
            "--check-mode" => o.check_mode = Some(value(&mut it, "--check-mode")?),
            "--check-depth" => {
                o.check_depth =
                    Some(parse_num(&value(&mut it, "--check-depth")?, "--check-depth")? as usize);
            }
            "--check-states" => {
                o.check_states = Some(parse_num(
                    &value(&mut it, "--check-states")?,
                    "--check-states",
                )?);
            }
            "--small" => o.small = true,
            "--no-run" => o.no_run = true,
            "--no-sync" => o.no_sync = true,
            "--follow" => o.follow = true,
            "--poll-ms" => {
                o.poll_ms = Some(parse_num(&value(&mut it, "--poll-ms")?, "--poll-ms")?);
            }
            "--workers" => {
                o.workers = Some(parse_num(&value(&mut it, "--workers")?, "--workers")? as usize);
            }
            "--deadline-ms" => {
                o.deadline_ms = Some(parse_num(
                    &value(&mut it, "--deadline-ms")?,
                    "--deadline-ms",
                )?);
            }
            "--retries" => {
                o.retries = Some(parse_num(&value(&mut it, "--retries")?, "--retries")? as u32);
            }
            "--budget-bytes" => {
                o.budget_bytes = Some(parse_num(
                    &value(&mut it, "--budget-bytes")?,
                    "--budget-bytes",
                )?);
            }
            "--cell-delay-ms" => {
                o.cell_delay_ms = Some(parse_num(
                    &value(&mut it, "--cell-delay-ms")?,
                    "--cell-delay-ms",
                )?);
            }
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => o.positional.push(a.clone()),
        }
    }
    Ok(o)
}

fn parse_num(tok: &str, flag: &str) -> Result<u64, String> {
    tok.parse().map_err(|_| format!("{flag} needs a number"))
}

fn config_for(o: &Opts) -> Result<ServeConfig, String> {
    let dir = o.dir.as_deref().ok_or("--dir is required")?;
    let mut cfg = ServeConfig::new(dir);
    if let Some(w) = o.workers {
        cfg.workers = w.max(1);
    }
    cfg.deadline = o.deadline_ms.map(Duration::from_millis);
    if let Some(r) = o.retries {
        cfg.retry = RetryPolicy {
            max_attempts: r.max(1),
            ..RetryPolicy::default()
        };
    }
    cfg.store_budget = o.budget_bytes;
    cfg.sync_journal = !o.no_sync;
    cfg.cell_delay = o.cell_delay_ms.map(Duration::from_millis);
    Ok(cfg)
}

/// The `--grid smoke` job: the six TATAS locked kernels × every protocol at
/// four cores with smoke parameters — 18 quick cells.
fn smoke_grid() -> JobSpec {
    let kernels: Vec<KernelId> = LockedStruct::ALL
        .iter()
        .map(|&s| KernelId::Locked(s, LockKind::Tatas))
        .collect();
    JobSpec::Campaign(kernel_grid(&kernels, 4, &Protocol::ALL, |p| {
        *p = dvs_kernels::KernelParams::smoke(4);
    }))
}

/// Resolves a `--litmus`/`--deep-check` selector to concrete litmus names.
fn litmus_names(which: &str) -> Result<Vec<String>, String> {
    match which {
        "all" => Ok(Litmus::all().iter().map(|l| l.name.to_owned()).collect()),
        name => {
            Litmus::by_name(name).ok_or_else(|| format!("unknown litmus {name:?}"))?;
            Ok(vec![name.to_owned()])
        }
    }
}

fn job_for(o: &Opts) -> Result<JobSpec, String> {
    match (&o.grid, o.fuzz, &o.litmus, &o.deep_check) {
        (Some(grid), None, None, None) => match grid.as_str() {
            "smoke" => Ok(smoke_grid()),
            other => Err(format!("unknown grid {other:?} (try: smoke)")),
        },
        (None, Some((seed_start, count)), None, None) => Ok(JobSpec::FuzzHunt {
            seed_start,
            count,
            small: o.small,
        }),
        (None, None, Some(which), None) => Ok(JobSpec::Litmus {
            names: litmus_names(which)?,
            protocols: Protocol::ALL.to_vec(),
        }),
        (None, None, None, Some(which)) => Ok(JobSpec::DeepCheck {
            names: litmus_names(which)?,
            protocols: Protocol::ALL.to_vec(),
            mode: match o.check_mode.as_deref() {
                None => DeepCheckMode::Exact,
                Some(tok) => DeepCheckMode::from_token(tok)?,
            },
            depth: o.check_depth.unwrap_or(1_000),
            states: o.check_states.unwrap_or(200_000),
        }),
        _ => Err("submit needs exactly one of --grid, --fuzz, --litmus, --deep-check".into()),
    }
}

fn print_report(r: &dvs_serve::JobReport) {
    println!(
        "job={} cells={} hits={} computed={} failed={} retries={} digest={:016x}",
        r.id, r.cells, r.hits, r.computed, r.failed, r.retries, r.digest
    );
}

fn print_metrics(serve: &Serve) {
    for ((node, component, name), value) in serve.metrics().counters() {
        eprintln!("  {node}/{component}/{name} = {value}");
    }
}

/// One human-readable line per journal event, `key=value` like the job
/// summary lines so the output stays machine-parseable.
fn render_event(e: &JournalEvent) -> String {
    match e {
        JournalEvent::Job { id, cells, kind } => {
            format!("job={id} kind={kind} cells={cells} submitted")
        }
        JournalEvent::CellOk {
            job,
            index,
            payload_fnv,
            wall_nanos,
        } => format!(
            "job={job} cell={index} ok payload={payload_fnv:016x} wall={}ms",
            wall_nanos / 1_000_000
        ),
        JournalEvent::CellErr { job, index, class } => {
            format!("job={job} cell={index} err class={class}")
        }
        JournalEvent::Retry {
            job,
            index,
            attempt,
        } => format!("job={job} cell={index} retry attempt={attempt}"),
        JournalEvent::Done { job, digest } => format!("job={job} done digest={digest:016x}"),
    }
}

/// `status --follow`: replays the journal from the start, then tails it,
/// printing one line per durable event as it lands — live progress for a
/// job another process is running. Exits once every journaled job has
/// sealed with `done`; until a first job appears (or while one is still
/// running) it keeps polling, so Ctrl-C is the way out of an idle follow.
fn follow_status(o: &Opts) -> Result<ExitCode, String> {
    let dir = o.dir.as_deref().ok_or("--dir is required")?;
    let mut tail = JournalTail::new(std::path::Path::new(dir).join("journal.log"));
    let poll = Duration::from_millis(o.poll_ms.unwrap_or(200).max(1));
    let mut open_jobs = std::collections::BTreeSet::new();
    let mut saw_a_job = false;
    loop {
        for event in tail.poll().map_err(|e| e.to_string())? {
            match event {
                Ok(e) => {
                    println!("{}", render_event(&e));
                    match e {
                        JournalEvent::Job { id, .. } => {
                            saw_a_job = true;
                            open_jobs.insert(id);
                        }
                        JournalEvent::Done { job, .. } => {
                            open_jobs.remove(&job);
                        }
                        _ => {}
                    }
                }
                Err(why) => eprintln!("dvs-serve: journal: {why}"),
            }
        }
        if saw_a_job && open_jobs.is_empty() {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(poll);
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("usage: dvs-serve <submit|resume|status|verify-store|gc> --dir D ...".into());
    };
    let o = parse_opts(rest)?;
    match cmd.as_str() {
        "submit" => {
            let job = job_for(&o)?;
            let mut serve = Serve::open(config_for(&o)?).map_err(|e| e.to_string())?;
            let id = serve.submit(&job).map_err(|e| e.to_string())?;
            if o.no_run {
                println!("job={id} cells={} submitted", job.cells().len());
                return Ok(ExitCode::SUCCESS);
            }
            let report = serve.run_job(id).map_err(|e| e.to_string())?;
            print_report(&report);
            print_metrics(&serve);
            Ok(if report.failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "resume" => {
            let mut serve = Serve::open(config_for(&o)?).map_err(|e| e.to_string())?;
            let reports = serve.resume_all().map_err(|e| e.to_string())?;
            if reports.is_empty() {
                println!("nothing to resume");
            }
            let mut failed = 0;
            for r in &reports {
                print_report(r);
                failed += r.failed;
            }
            print_metrics(&serve);
            Ok(if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "status" => {
            if o.follow {
                return follow_status(&o);
            }
            let serve = Serve::open(config_for(&o)?).map_err(|e| e.to_string())?;
            let jobs = serve.status();
            if jobs.is_empty() {
                println!("no jobs");
            }
            for j in jobs {
                let wall_ms = j.wall_nanos / 1_000_000;
                match j.digest {
                    Some(d) => println!(
                        "job={} kind={} cells={}/{} failed={} retries={} wall={wall_ms}ms \
                         done digest={d:016x}",
                        j.id, j.kind, j.completed, j.cells, j.failed, j.retries
                    ),
                    None => println!(
                        "job={} kind={} cells={}/{} failed={} retries={} wall={wall_ms}ms \
                         pending={}",
                        j.id, j.kind, j.completed, j.cells, j.failed, j.retries, j.pending
                    ),
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify-store" => {
            let mut serve = Serve::open(config_for(&o)?).map_err(|e| e.to_string())?;
            let report = serve.verify_store();
            println!(
                "checked={} ok={} quarantined={}",
                report.checked,
                report.ok,
                report.quarantined.len()
            );
            for (name, reason) in &report.quarantined {
                eprintln!("  {name}: {reason}");
            }
            Ok(if report.quarantined.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "gc" => {
            let mut serve = Serve::open(config_for(&o)?).map_err(|e| e.to_string())?;
            let report = serve.gc_store();
            println!(
                "removed_stale={} removed_budget={} remaining_bytes={}",
                report.removed_stale, report.removed_budget, report.remaining_bytes
            );
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(format!("unknown command {cmd:?}")),
    }
}
