//! Jobs and cells: the service's unit of work.
//!
//! A [`JobSpec`] names a whole workload — a campaign grid, a fuzz hunt, a
//! litmus sweep, or a deep model-checking sweep — and expands into an
//! ordered list of [`CellSpec`]s, one independent simulation each. Cells are the granularity of everything the
//! service does: content-addressed caching (a cell's canonical text token
//! is the cache key), journaling, retries, and deadlines.
//!
//! A cell's *payload* is a deterministic JSON rendering of its simulated
//! results — no wall-clock, worker identity, or host properties — so a
//! recomputed cell is byte-identical to its cached copy and job digests
//! survive any mix of cache hits and recomputes.

use dvs_campaign::{
    mutation_token, parse_mutation_token, run_recorded, CampaignError, ExperimentSpec,
};
use dvs_check::{check_litmus, swarm_litmus, CheckConfig, SwarmConfig, Verdict, VisitedMode};
use dvs_core::config::{Protocol, ProtocolMutation, SystemConfig};
use dvs_core::system::SimError;
use dvs_core::System;
use dvs_fuzz::{generate, run_case, CaseVerdict, GenConfig, HarnessConfig};
use dvs_stats::report::JsonObject;
use dvs_stats::{RunStats, TrafficClass};
use dvs_vm::litmus::Litmus;
use dvs_vm::Asm;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Whether a failed cell is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// A panic or a cycle-limit trip — the classes the retry policy deems
    /// possibly environmental and retries with backoff.
    Transient,
    /// A semantic failure (check/build/deadlock/divergence) that will
    /// reproduce identically; retrying is waste.
    Deterministic,
}

impl FailureClass {
    /// The class's journal token.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::Transient => "transient",
            FailureClass::Deterministic => "deterministic",
        }
    }
}

/// Why a cell attempt failed.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Retry-or-not classification.
    pub class: FailureClass,
    /// Human-readable explanation.
    pub detail: String,
}

/// One attempt's outcome: the payload (deterministic JSON text) or a
/// classified failure, plus the attempt's compute wall-clock.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Payload or failure.
    pub outcome: Result<String, CellFailure>,
    /// Host wall-clock of this attempt, in nanoseconds.
    pub wall_nanos: u64,
}

/// A whole workload submitted as one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// An ordered campaign grid.
    Campaign(Vec<ExperimentSpec>),
    /// A consecutive-seed differential fuzz hunt.
    FuzzHunt {
        /// First generator seed.
        seed_start: u64,
        /// Number of cases.
        count: usize,
        /// Use the small generator pool.
        small: bool,
    },
    /// A litmus sweep: every named test × every protocol.
    Litmus {
        /// Litmus names (see `dvs_vm::litmus::Litmus::by_name`).
        names: Vec<String>,
        /// Protocols to sweep.
        protocols: Vec<Protocol>,
    },
    /// A deep model-checking sweep: every named litmus × every protocol,
    /// explored by the model checker under one budget/mode.
    DeepCheck {
        /// Litmus names.
        names: Vec<String>,
        /// Protocols to sweep.
        protocols: Vec<Protocol>,
        /// Exploration strategy and visited tier.
        mode: DeepCheckMode,
        /// Depth bound (exhaustive modes) or per-probe depth (swarm).
        depth: usize,
        /// Expansion budget (exhaustive) or per-probe claim budget (swarm).
        states: u64,
    },
}

/// How a deep-check cell explores. Serialized inside the cell token, so
/// every variant field is part of the content address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeepCheckMode {
    /// Exhaustive exploration over the exact visited tier, with sleep-set
    /// partial-order reduction.
    Exact,
    /// Exhaustive exploration over a lossy bitstate filter of `bits` bits
    /// (POR off — it composes unsoundly with a weakening-free store).
    Bitstate {
        /// Filter size in bits.
        bits: u64,
    },
    /// Swarm verification: `probes` seeded randomized probes sharing one
    /// bitstate filter.
    Swarm {
        /// Number of probes.
        probes: u64,
    },
}

impl DeepCheckMode {
    /// The mode's token field value (`exact`, `bits:N`, `swarm:N`).
    pub fn token(self) -> String {
        match self {
            DeepCheckMode::Exact => "exact".to_owned(),
            DeepCheckMode::Bitstate { bits } => format!("bits:{bits}"),
            DeepCheckMode::Swarm { probes } => format!("swarm:{probes}"),
        }
    }

    /// Parses a token produced by [`DeepCheckMode::token`].
    ///
    /// # Errors
    ///
    /// Explains what failed to parse.
    pub fn from_token(tok: &str) -> Result<DeepCheckMode, String> {
        if tok == "exact" {
            return Ok(DeepCheckMode::Exact);
        }
        if let Some(bits) = tok.strip_prefix("bits:") {
            let bits = bits.parse().map_err(|_| format!("bad bits {bits:?}"))?;
            return Ok(DeepCheckMode::Bitstate { bits });
        }
        if let Some(probes) = tok.strip_prefix("swarm:") {
            let probes = probes
                .parse()
                .map_err(|_| format!("bad probes {probes:?}"))?;
            return Ok(DeepCheckMode::Swarm { probes });
        }
        Err(format!(
            "unknown check mode {tok:?} (want exact, bits:N, or swarm:N)"
        ))
    }
}

impl JobSpec {
    /// Human-readable kind label (journaled for `status`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Campaign(_) => "campaign",
            JobSpec::FuzzHunt { .. } => "fuzz-hunt",
            JobSpec::Litmus { .. } => "litmus",
            JobSpec::DeepCheck { .. } => "deep-check",
        }
    }

    /// Expands the job into its ordered cell list.
    pub fn cells(&self) -> Vec<CellSpec> {
        match self {
            JobSpec::Campaign(specs) => specs.iter().map(|&s| CellSpec::Run(s)).collect(),
            JobSpec::FuzzHunt {
                seed_start,
                count,
                small,
            } => (0..*count as u64)
                .map(|i| CellSpec::Fuzz {
                    seed: seed_start + i,
                    small: *small,
                })
                .collect(),
            JobSpec::Litmus { names, protocols } => names
                .iter()
                .flat_map(|name| {
                    protocols.iter().map(move |&protocol| CellSpec::Litmus {
                        name: name.clone(),
                        protocol,
                    })
                })
                .collect(),
            JobSpec::DeepCheck {
                names,
                protocols,
                mode,
                depth,
                states,
            } => names
                .iter()
                .flat_map(|name| {
                    protocols.iter().map(move |&protocol| CellSpec::DeepCheck {
                        name: name.clone(),
                        protocol,
                        mode: *mode,
                        depth: *depth,
                        states: *states,
                        mutation: None,
                    })
                })
                .collect(),
        }
    }
}

/// One independent simulation within a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellSpec {
    /// A campaign experiment.
    Run(ExperimentSpec),
    /// One differential fuzz case.
    Fuzz {
        /// Generator seed.
        seed: u64,
        /// Use the small generator pool.
        small: bool,
    },
    /// One litmus test on one protocol (timed simulator, SC verdict).
    Litmus {
        /// The litmus name.
        name: String,
        /// The protocol under test.
        protocol: Protocol,
    },
    /// One deep model-checking run: a litmus test's full interleaving
    /// space explored by `dvs-check` under an explicit budget. Executed
    /// with one worker so the payload — verdict, unique states, which
    /// budget fired — is byte-identical on recompute.
    DeepCheck {
        /// The litmus name.
        name: String,
        /// The protocol under test.
        protocol: Protocol,
        /// Exploration strategy and visited tier.
        mode: DeepCheckMode,
        /// Depth bound (exhaustive modes) or per-probe depth (swarm).
        depth: usize,
        /// Expansion budget (exhaustive) or per-probe claims (swarm).
        states: u64,
        /// Optional seeded protocol bug — a mutation cell *expects* a
        /// violation and records the verdict either way; a clean cell
        /// fails deterministically if one is found.
        mutation: Option<ProtocolMutation>,
    },
}

impl CellSpec {
    /// The cell's canonical token — the content-address input. Equal cells
    /// have equal tokens; anything that can change the result is in here.
    pub fn token(&self) -> String {
        match self {
            CellSpec::Run(spec) => format!("run;{}", spec.token()),
            CellSpec::Fuzz { seed, small } => format!(
                "fuzz;seed={seed};pool={}",
                if *small { "small" } else { "default" }
            ),
            CellSpec::Litmus { name, protocol } => {
                format!("litmus;name={name};proto={}", protocol.label())
            }
            CellSpec::DeepCheck {
                name,
                protocol,
                mode,
                depth,
                states,
                mutation,
            } => {
                let mut t = format!(
                    "check;name={name};proto={};mode={};depth={depth};states={states}",
                    protocol.label(),
                    mode.token()
                );
                if let Some(m) = mutation {
                    t.push_str(&format!(";mut={}", mutation_token(*m)));
                }
                t
            }
        }
    }

    /// Parses a token produced by [`CellSpec::token`].
    ///
    /// # Errors
    ///
    /// Explains what failed to parse.
    pub fn from_token(token: &str) -> Result<CellSpec, String> {
        if let Some(rest) = token.strip_prefix("run;") {
            return Ok(CellSpec::Run(ExperimentSpec::from_token(rest)?));
        }
        if let Some(rest) = token.strip_prefix("fuzz;") {
            let mut seed = None;
            let mut small = false;
            for part in rest.split(';') {
                match part.split_once('=') {
                    Some(("seed", v)) => {
                        seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
                    }
                    Some(("pool", "small")) => small = true,
                    Some(("pool", "default")) => small = false,
                    _ => return Err(format!("bad fuzz field {part:?}")),
                }
            }
            return Ok(CellSpec::Fuzz {
                seed: seed.ok_or("missing seed")?,
                small,
            });
        }
        if let Some(rest) = token.strip_prefix("litmus;") {
            let mut name = None;
            let mut protocol = None;
            for part in rest.split(';') {
                match part.split_once('=') {
                    Some(("name", v)) => name = Some(v.to_owned()),
                    Some(("proto", v)) => protocol = Some(dvs_campaign::parse_protocol(v)?),
                    _ => return Err(format!("bad litmus field {part:?}")),
                }
            }
            return Ok(CellSpec::Litmus {
                name: name.ok_or("missing name")?,
                protocol: protocol.ok_or("missing proto")?,
            });
        }
        if let Some(rest) = token.strip_prefix("check;") {
            let (mut name, mut protocol, mut mode) = (None, None, None);
            let (mut depth, mut states, mut mutation) = (None, None, None);
            for part in rest.split(';') {
                match part.split_once('=') {
                    Some(("name", v)) => name = Some(v.to_owned()),
                    Some(("proto", v)) => protocol = Some(dvs_campaign::parse_protocol(v)?),
                    Some(("mode", v)) => mode = Some(DeepCheckMode::from_token(v)?),
                    Some(("depth", v)) => {
                        depth = Some(v.parse().map_err(|_| format!("bad depth {v:?}"))?);
                    }
                    Some(("states", v)) => {
                        states = Some(v.parse().map_err(|_| format!("bad states {v:?}"))?);
                    }
                    Some(("mut", v)) => mutation = Some(parse_mutation_token(v)?),
                    _ => return Err(format!("bad check field {part:?}")),
                }
            }
            return Ok(CellSpec::DeepCheck {
                name: name.ok_or("missing name")?,
                protocol: protocol.ok_or("missing proto")?,
                mode: mode.ok_or("missing mode")?,
                depth: depth.ok_or("missing depth")?,
                states: states.ok_or("missing states")?,
                mutation,
            });
        }
        Err(format!("unknown cell token {token:?}"))
    }

    /// Executes one attempt of this cell. Panics anywhere in the stack are
    /// caught and classified [`FailureClass::Transient`]; the attempt's
    /// wall-clock comes from the same accounting the campaign runner uses
    /// (`RunRecord::wall_nanos` for run cells).
    pub fn execute(&self) -> CellResult {
        match self {
            CellSpec::Run(spec) => {
                // run_recorded already catch_unwinds and times the run —
                // the shared timing source.
                let record = run_recorded(spec, 0);
                CellResult {
                    outcome: match record.outcome {
                        Ok(stats) => Ok(run_payload(spec, &stats)),
                        Err(e) => Err(classify_campaign(&e)),
                    },
                    wall_nanos: record.wall_nanos,
                }
            }
            CellSpec::Fuzz { seed, small } => timed_catch(|| {
                let pool = if *small {
                    GenConfig::small()
                } else {
                    GenConfig::default_pool()
                };
                let case = generate(*seed, &pool);
                match run_case(&case, &HarnessConfig::default()) {
                    CaseVerdict::Pass { ref_fnv, instrs } => {
                        let mut obj = JsonObject::new();
                        obj.str("kind", "fuzz")
                            .u64("seed", *seed)
                            .bool("ok", true)
                            .str("ref_fnv", &format!("{ref_fnv:016x}"))
                            .u64("instrs", instrs as u64);
                        Ok(obj.render())
                    }
                    CaseVerdict::Sick { reason } => Err(CellFailure {
                        class: FailureClass::Deterministic,
                        detail: format!("sick case: {reason}"),
                    }),
                    CaseVerdict::Diverged { divergence, .. } => Err(CellFailure {
                        class: FailureClass::Deterministic,
                        detail: format!("diverged: {divergence}"),
                    }),
                }
            }),
            CellSpec::Litmus { name, protocol } => timed_catch(|| {
                let lit = Litmus::by_name(name).ok_or_else(|| CellFailure {
                    class: FailureClass::Deterministic,
                    detail: format!("unknown litmus {name:?}"),
                })?;
                let mut cfg = SystemConfig::small(4, *protocol);
                cfg.check_invariants = true;
                let mut programs = lit.programs.clone();
                while programs.len() < cfg.cores {
                    let mut a = Asm::new("idle");
                    a.halt();
                    programs.push(a.build());
                }
                let mut sys = System::new(cfg, lit.layout.clone(), programs);
                let stats = sys.run().map_err(|e| classify_sim(&e))?;
                lit.check(|a| sys.read_word(a))
                    .map_err(|vals| CellFailure {
                        class: FailureClass::Deterministic,
                        detail: format!("{}: {} — observed {vals:?}", lit.name, lit.property),
                    })?;
                let mut obj = JsonObject::new();
                obj.str("kind", "litmus")
                    .str("name", name)
                    .str("protocol", protocol.label())
                    .bool("ok", true)
                    .u64("cycles", stats.cycles);
                Ok(obj.render())
            }),
            CellSpec::DeepCheck {
                name,
                protocol,
                mode,
                depth,
                states,
                mutation,
            } => timed_catch(|| {
                let lit = Litmus::by_name(name).ok_or_else(|| CellFailure {
                    class: FailureClass::Deterministic,
                    detail: format!("unknown litmus {name:?}"),
                })?;
                let report = match mode {
                    DeepCheckMode::Swarm { probes } => swarm_litmus(
                        &lit,
                        *protocol,
                        *mutation,
                        &SwarmConfig {
                            probes: *probes,
                            workers: 1,
                            probe_depth: *depth,
                            probe_states: *states,
                            ..SwarmConfig::default()
                        },
                    ),
                    exhaustive => {
                        let (visited, por) = match exhaustive {
                            DeepCheckMode::Bitstate { bits } => {
                                // POR's subset-prune needs the exact tier's
                                // weakening; with a lossy store it would
                                // under-explore unsoundly.
                                (VisitedMode::Bitstate { bits: *bits }, false)
                            }
                            _ => (VisitedMode::Exact, true),
                        };
                        let cfg = CheckConfig {
                            workers: 1,
                            max_depth: *depth,
                            max_states: *states,
                            por,
                            visited,
                            ..CheckConfig::default()
                        };
                        check_litmus(&lit, *protocol, *mutation, &cfg)
                    }
                };
                let s = &report.stats;
                let mut obj = JsonObject::new();
                obj.str("kind", "check")
                    .str("name", name)
                    .str("protocol", protocol.label())
                    .str("mode", &mode.token());
                if let Some(m) = mutation {
                    obj.str("mutation", mutation_token(*m));
                }
                match &report.verdict {
                    Verdict::Verified => {
                        obj.str("verdict", "verified");
                    }
                    Verdict::Violated(ce) => {
                        if mutation.is_none() {
                            return Err(CellFailure {
                                class: FailureClass::Deterministic,
                                detail: format!(
                                    "{name} under {} violated after {} picks: {}",
                                    protocol.label(),
                                    ce.picks.len(),
                                    ce.failure
                                ),
                            });
                        }
                        obj.str("verdict", "violated")
                            .u64("picks", ce.picks.len() as u64)
                            .bool("minimized", ce.minimized);
                    }
                }
                obj.u64("unique_states", s.unique_states)
                    .u64("expansions", s.expansions)
                    .str("budget", s.budget_fired())
                    .bool("depth_truncated", s.depth_truncated)
                    .bool("state_truncated", s.state_truncated)
                    .u64("max_depth_seen", s.max_depth_seen as u64);
                Ok(obj.render())
            }),
        }
    }
}

/// Runs `f` under `catch_unwind` with wall-clock accounting.
fn timed_catch(f: impl FnOnce() -> Result<String, CellFailure>) -> CellResult {
    let t0 = Instant::now();
    let outcome = match catch_unwind(AssertUnwindSafe(f)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(CellFailure {
                class: FailureClass::Transient,
                detail: format!("panicked: {msg}"),
            })
        }
    };
    CellResult {
        outcome,
        wall_nanos: t0.elapsed().as_nanos() as u64,
    }
}

/// The deterministic result payload of a run cell: spec identity plus
/// simulated quantities only.
fn run_payload(spec: &ExperimentSpec, stats: &RunStats) -> String {
    let mut obj = JsonObject::new();
    obj.str("kind", "run")
        .str("spec", &spec.label())
        .str("protocol", spec.protocol.label())
        .u64("cores", spec.workload.cores() as u64)
        .u64("cycles", stats.cycles)
        .u64("events", stats.events);
    let mut traffic = JsonObject::new();
    for &c in &TrafficClass::ALL {
        traffic.u64(c.label(), stats.traffic.get(c));
    }
    traffic.u64("messages", stats.traffic.messages());
    obj.object("traffic", traffic);
    let mut cache = JsonObject::new();
    cache
        .u64("hits", stats.cache.hits())
        .u64("misses", stats.cache.misses());
    obj.object("cache", cache);
    obj.render()
}

/// Maps a campaign run failure onto the retry taxonomy.
fn classify_campaign(e: &CampaignError) -> CellFailure {
    let class = match e {
        CampaignError::Panic(_) => FailureClass::Transient,
        CampaignError::Sim(SimError::CycleLimit { .. }) => FailureClass::Transient,
        _ => FailureClass::Deterministic,
    };
    CellFailure {
        class,
        detail: e.to_string(),
    }
}

/// Maps a raw simulator failure onto the retry taxonomy.
fn classify_sim(e: &SimError) -> CellFailure {
    CellFailure {
        class: match e {
            SimError::CycleLimit { .. } => FailureClass::Transient,
            _ => FailureClass::Deterministic,
        },
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_kernels::{KernelId, KernelParams, LockKind, LockedStruct};

    fn counter_spec() -> ExperimentSpec {
        ExperimentSpec::kernel(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            KernelParams::smoke(4),
            Protocol::DeNovoSync,
        )
    }

    #[test]
    fn cell_tokens_round_trip() {
        let cells = vec![
            CellSpec::Run(counter_spec()),
            CellSpec::Fuzz {
                seed: 0x2a,
                small: true,
            },
            CellSpec::Fuzz {
                seed: 7,
                small: false,
            },
            CellSpec::Litmus {
                name: "mp".to_owned(),
                protocol: Protocol::Mesi,
            },
            CellSpec::DeepCheck {
                name: "tatas".to_owned(),
                protocol: Protocol::DeNovoSync,
                mode: DeepCheckMode::Exact,
                depth: 500,
                states: 100_000,
                mutation: None,
            },
            CellSpec::DeepCheck {
                name: "sb".to_owned(),
                protocol: Protocol::Mesi,
                mode: DeepCheckMode::Bitstate { bits: 1 << 20 },
                depth: 400,
                states: 50_000,
                mutation: Some(dvs_core::config::ProtocolMutation::MesiSkipInvalidate),
            },
            CellSpec::DeepCheck {
                name: "mp".to_owned(),
                protocol: Protocol::Gcs,
                mode: DeepCheckMode::Swarm { probes: 32 },
                depth: 2_000,
                states: 10_000,
                mutation: None,
            },
        ];
        for cell in cells {
            let token = cell.token();
            assert_eq!(CellSpec::from_token(&token), Ok(cell), "{token}");
        }
        assert!(CellSpec::from_token("bogus;x=1").is_err());
        assert!(CellSpec::from_token("check;name=sb;proto=M;mode=maybe;depth=1;states=1").is_err());
        assert!(CellSpec::from_token("check;name=sb;proto=M;depth=1;states=1").is_err());
    }

    /// A deep-check cell's payload is deterministic on recompute, carries
    /// the split budget flags, and a mutation cell records its expected
    /// violation instead of failing.
    #[test]
    fn deep_check_cells_execute_with_budget_flags() {
        let clean = CellSpec::DeepCheck {
            name: "sb".to_owned(),
            protocol: Protocol::Mesi,
            mode: DeepCheckMode::Exact,
            depth: 1_000,
            states: 100_000,
            mutation: None,
        };
        let a = clean.execute().outcome.expect("sb verifies");
        let b = clean.execute().outcome.expect("sb verifies");
        assert_eq!(a, b, "recompute must be byte-identical");
        assert!(a.contains("\"kind\": \"check\""));
        assert!(a.contains("\"verdict\": \"verified\""));
        assert!(a.contains("\"budget\": \"none\""));
        assert!(a.contains("\"depth_truncated\": false"));
        assert!(a.contains("\"state_truncated\": false"));

        let mutated = CellSpec::DeepCheck {
            name: "tatas".to_owned(),
            protocol: Protocol::Mesi,
            mode: DeepCheckMode::Exact,
            depth: 1_000,
            states: 200_000,
            mutation: Some(dvs_core::config::ProtocolMutation::MesiSkipInvalidate),
        };
        let payload = mutated
            .execute()
            .outcome
            .expect("expected violation is a result");
        assert!(payload.contains("\"verdict\": \"violated\""));
        assert!(payload.contains("\"minimized\": true"));
        assert!(payload.contains("\"mutation\": \"mesi-skip-invalidate\""));
    }

    #[test]
    fn job_cells_expand_in_order() {
        let job = JobSpec::FuzzHunt {
            seed_start: 10,
            count: 3,
            small: true,
        };
        assert_eq!(job.kind(), "fuzz-hunt");
        let cells = job.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(
            cells[2],
            CellSpec::Fuzz {
                seed: 12,
                small: true
            }
        );

        let job = JobSpec::Litmus {
            names: vec!["sb".to_owned(), "mp".to_owned()],
            protocols: vec![Protocol::Mesi, Protocol::DeNovoSync],
        };
        assert_eq!(job.cells().len(), 4);
    }

    #[test]
    fn run_cell_payload_is_deterministic() {
        let cell = CellSpec::Run(counter_spec());
        let a = cell.execute();
        let b = cell.execute();
        assert_eq!(
            a.outcome.as_ref().expect("runs"),
            b.outcome.as_ref().expect("runs")
        );
        assert!(a.outcome.expect("runs").contains("\"kind\": \"run\""));
        assert!(a.wall_nanos > 0);
    }

    #[test]
    fn litmus_and_fuzz_cells_execute() {
        let lit = CellSpec::Litmus {
            name: "mp".to_owned(),
            protocol: Protocol::DeNovoSync,
        }
        .execute();
        assert!(lit
            .outcome
            .expect("sc holds")
            .contains("\"kind\": \"litmus\""));

        let fuzz = CellSpec::Fuzz {
            seed: 0,
            small: true,
        }
        .execute();
        assert!(fuzz
            .outcome
            .expect("stock protocols pass")
            .contains("\"ok\": true"));
    }

    #[test]
    fn panics_classify_transient_and_checks_deterministic() {
        // threads=0 panics inside the workload builder.
        let mut params = KernelParams::smoke(4);
        params.threads = 0;
        let spec = ExperimentSpec::kernel(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            params,
            Protocol::Mesi,
        );
        let result = CellSpec::Run(spec).execute();
        let failure = result.outcome.expect_err("panics");
        assert_eq!(failure.class, FailureClass::Transient);

        let unknown = CellSpec::Litmus {
            name: "nope".to_owned(),
            protocol: Protocol::Mesi,
        }
        .execute();
        let failure = unknown.outcome.expect_err("unknown litmus");
        assert_eq!(failure.class, FailureClass::Deterministic);
    }

    #[test]
    fn cycle_limit_classifies_transient() {
        let mut spec = counter_spec();
        spec.overrides.max_cycles = Some(10);
        let result = CellSpec::Run(spec).execute();
        let failure = result.outcome.expect_err("trips the limit");
        assert_eq!(failure.class, FailureClass::Transient);
    }
}
