//! The write-ahead job journal.
//!
//! An append-only text log under the service directory: one line per
//! durable event (job registered, cell completed, job finished), each line
//! carrying its own FNV checksum. Appends are flushed (and optionally
//! fsynced) before the caller treats the event as durable, so a `kill -9`
//! can lose at most the line being written — and a torn trailing line is
//! detected by its checksum and ignored on recovery. The journal records
//! *facts about completion*, never payloads: cell payloads live in the
//! content-addressed store, and the job digest folds the per-cell payload
//! digests recorded here, which is what makes resume-after-crash produce a
//! byte-identical final digest without re-reading (or trusting) the cache.
//!
//! ```text
//! job 1 18 campaign #1a2b3c4d
//! cell 1 0 ok 9e107d9d372bb682 1250000 #...
//! cell 1 3 err deadline #...
//! done 1 84d1c8a3b4e5f607 #...
//! ```

use dvs_campaign::{fnv1a_str, FNV_OFFSET};
use std::fs;
use std::io::{BufRead, Write as _};
use std::path::{Path, PathBuf};

/// One durable event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// A job was admitted; its cell list is durably on disk already.
    Job {
        /// Job id (monotonically increasing per service directory).
        id: u64,
        /// Number of cells the job expands to.
        cells: usize,
        /// Human-readable job kind label.
        kind: String,
    },
    /// A cell completed successfully; `payload_fnv` is the digest of its
    /// (stored or recomputed) payload, `wall_nanos` the compute wall-clock
    /// (0 for a cache hit).
    CellOk {
        /// Owning job.
        job: u64,
        /// Cell index within the job.
        index: usize,
        /// FNV-1a digest of the cell's payload.
        payload_fnv: u64,
        /// Host wall-clock spent computing, in nanoseconds.
        wall_nanos: u64,
    },
    /// A cell failed terminally (deterministic failure, exhausted retries,
    /// or a missed deadline).
    CellErr {
        /// Owning job.
        job: u64,
        /// Cell index within the job.
        index: usize,
        /// Failure class token (`deterministic`, `exhausted`, `deadline`).
        class: String,
    },
    /// A transient cell failure is being retried. Progress-only: retries
    /// never enter the digest, but `status` reports them so a stuck job is
    /// visible from the journal alone.
    Retry {
        /// Owning job.
        job: u64,
        /// Cell index within the job.
        index: usize,
        /// The attempt that just failed (1-based).
        attempt: u32,
    },
    /// Every cell of the job reached a terminal state; `digest` is the
    /// job's final results digest.
    Done {
        /// The finished job.
        job: u64,
        /// Final FNV-1a results digest.
        digest: u64,
    },
}

/// A cell's terminal state as recovered from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Completed with this payload digest.
    Ok {
        /// FNV-1a digest of the payload.
        payload_fnv: u64,
        /// Compute wall-clock in nanoseconds (0 for a cache hit).
        wall_nanos: u64,
    },
    /// Failed terminally with this class token.
    Err {
        /// Failure class token.
        class: String,
    },
}

/// One job's recovered progress.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// Job id.
    pub id: u64,
    /// Human-readable kind label.
    pub kind: String,
    /// Per-cell terminal outcomes (`None` = still pending).
    pub outcomes: Vec<Option<CellOutcome>>,
    /// Retry attempts journaled for this job (all cells, all runs).
    pub retries: u64,
    /// The final digest, once every cell was terminal.
    pub done: Option<u64>,
}

impl RecoveredJob {
    /// Indices of cells with no terminal outcome yet, in order.
    pub fn pending(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total compute wall-clock journaled for completed cells, in
    /// nanoseconds (cache hits contribute zero).
    pub fn wall_nanos(&self) -> u64 {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                Some(CellOutcome::Ok { wall_nanos, .. }) => Some(*wall_nanos),
                _ => None,
            })
            .sum()
    }
}

/// The open journal file plus its durability policy.
#[derive(Debug)]
pub struct Journal {
    file: fs::File,
    sync: bool,
}

fn checksum(body: &str) -> u32 {
    fnv1a_str(FNV_OFFSET, body) as u32
}

fn render(event: &JournalEvent) -> String {
    let body = match event {
        JournalEvent::Job { id, cells, kind } => {
            format!("job {id} {cells} {}", sanitize(kind))
        }
        JournalEvent::CellOk {
            job,
            index,
            payload_fnv,
            wall_nanos,
        } => format!("cell {job} {index} ok {payload_fnv:016x} {wall_nanos}"),
        JournalEvent::CellErr { job, index, class } => {
            format!("cell {job} {index} err {}", sanitize(class))
        }
        JournalEvent::Retry {
            job,
            index,
            attempt,
        } => format!("retry {job} {index} {attempt}"),
        JournalEvent::Done { job, digest } => format!("done {job} {digest:016x}"),
    };
    format!("{body} #{:08x}\n", checksum(&body))
}

/// Keeps free-form labels from breaking the line format.
fn sanitize(s: &str) -> String {
    s.replace(['\n', '\r', '#'], "_")
}

/// Parses one journal line, verifying its checksum.
fn parse_line(line: &str) -> Result<JournalEvent, String> {
    let (body, sum) = line
        .rsplit_once(" #")
        .ok_or_else(|| format!("no checksum: {line:?}"))?;
    let sum = u32::from_str_radix(sum, 16).map_err(|_| format!("bad checksum: {line:?}"))?;
    if checksum(body) != sum {
        return Err(format!("checksum mismatch: {line:?}"));
    }
    let mut words = body.split(' ');
    let tag = words.next().unwrap_or_default();
    let mut num = |what: &str| -> Result<u64, String> {
        words
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| format!("bad {what}: {line:?}"))
    };
    match tag {
        "job" => {
            let id = num("job id")?;
            let cells = num("cell count")? as usize;
            let kind = words.collect::<Vec<_>>().join(" ");
            Ok(JournalEvent::Job { id, cells, kind })
        }
        "cell" => {
            let job = num("job id")?;
            let index = num("cell index")? as usize;
            match words.next() {
                Some("ok") => {
                    let payload_fnv = words
                        .next()
                        .and_then(|w| u64::from_str_radix(w, 16).ok())
                        .ok_or_else(|| format!("bad payload fnv: {line:?}"))?;
                    let wall_nanos = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| format!("bad wall: {line:?}"))?;
                    Ok(JournalEvent::CellOk {
                        job,
                        index,
                        payload_fnv,
                        wall_nanos,
                    })
                }
                Some("err") => Ok(JournalEvent::CellErr {
                    job,
                    index,
                    class: words.collect::<Vec<_>>().join(" "),
                }),
                other => Err(format!("bad cell verdict {other:?}: {line:?}")),
            }
        }
        "retry" => {
            let job = num("job id")?;
            let index = num("cell index")? as usize;
            let attempt = num("attempt")? as u32;
            Ok(JournalEvent::Retry {
                job,
                index,
                attempt,
            })
        }
        "done" => {
            let job = num("job id")?;
            let digest = words
                .next()
                .and_then(|w| u64::from_str_radix(w, 16).ok())
                .ok_or_else(|| format!("bad digest: {line:?}"))?;
            Ok(JournalEvent::Done { job, digest })
        }
        other => Err(format!("unknown tag {other:?}: {line:?}")),
    }
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` and replays it into
    /// per-job recovered state. `sync` selects fsync-per-append durability.
    ///
    /// Recovery tolerates a torn *trailing* line (the signature of a crash
    /// mid-append): it is ignored with a warning. A corrupt line elsewhere
    /// stops replay at that point — everything after it is treated as
    /// never-happened, which only causes recomputation, never wrong
    /// results.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file.
    pub fn open(path: &Path, sync: bool) -> std::io::Result<(Journal, Vec<RecoveredJob>)> {
        let mut jobs: Vec<RecoveredJob> = Vec::new();
        if let Ok(f) = fs::File::open(path) {
            let reader = std::io::BufReader::new(f);
            let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
            for (i, line) in lines.iter().enumerate() {
                let event = match parse_line(line) {
                    Ok(event) => event,
                    Err(why) => {
                        let last = i + 1 == lines.len();
                        eprintln!(
                            "dvs-serve: journal line {} {}: {why}",
                            i + 1,
                            if last {
                                "torn by a crash; ignored"
                            } else {
                                "corrupt; replay stops here"
                            }
                        );
                        break;
                    }
                };
                apply(&mut jobs, event);
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok((Journal { file, sync }, jobs))
    }

    /// Durably appends one event (flush + optional fsync before returning).
    ///
    /// # Errors
    ///
    /// I/O errors writing; the caller decides whether to degrade or abort.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        self.file.write_all(render(event).as_bytes())?;
        self.file.flush()?;
        if self.sync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// An incremental, read-only view of a (possibly live) journal file.
///
/// Each [`poll`](JournalTail::poll) reads whatever bytes were appended
/// since the last call and yields every newly *completed* line exactly
/// once, parsed and checksum-verified. A partial trailing line (an append
/// still in flight) is left unconsumed until its newline lands, so a
/// concurrent writer is never observed mid-line. The file not existing yet
/// is not an error — the tail reports no events until it appears.
///
/// Unlike [`Journal::open`] recovery, which conservatively stops at the
/// first corrupt non-trailing line, a tail is progress reporting: a
/// complete line that fails its checksum is surfaced as an error and the
/// tail keeps going.
#[derive(Debug)]
pub struct JournalTail {
    path: PathBuf,
    offset: u64,
}

impl JournalTail {
    /// A tail positioned at the start of `path`: the first poll replays
    /// everything journaled so far.
    pub fn new(path: impl Into<PathBuf>) -> JournalTail {
        JournalTail {
            path: path.into(),
            offset: 0,
        }
    }

    /// The lines completed since the last poll — each the parsed event or,
    /// for a complete line failing its checksum, the parse error.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file (a missing file is *not* an error).
    pub fn poll(&mut self) -> std::io::Result<Vec<Result<JournalEvent, String>>> {
        use std::io::{ErrorKind, Read as _, Seek as _, SeekFrom};
        let mut f = match fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        f.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        let Some(last_newline) = buf.iter().rposition(|&b| b == b'\n') else {
            return Ok(Vec::new());
        };
        let complete = last_newline + 1;
        self.offset += complete as u64;
        let text = String::from_utf8_lossy(&buf[..complete]);
        Ok(text.lines().map(parse_line).collect())
    }
}

/// Folds one event into the recovered job list.
fn apply(jobs: &mut Vec<RecoveredJob>, event: JournalEvent) {
    match event {
        JournalEvent::Job { id, cells, kind } => jobs.push(RecoveredJob {
            id,
            kind,
            outcomes: vec![None; cells],
            retries: 0,
            done: None,
        }),
        JournalEvent::CellOk {
            job,
            index,
            payload_fnv,
            wall_nanos,
        } => {
            if let Some(j) = jobs.iter_mut().find(|j| j.id == job) {
                if let Some(slot) = j.outcomes.get_mut(index) {
                    *slot = Some(CellOutcome::Ok {
                        payload_fnv,
                        wall_nanos,
                    });
                }
            }
        }
        JournalEvent::CellErr { job, index, class } => {
            if let Some(j) = jobs.iter_mut().find(|j| j.id == job) {
                if let Some(slot) = j.outcomes.get_mut(index) {
                    *slot = Some(CellOutcome::Err { class });
                }
            }
        }
        JournalEvent::Retry { job, .. } => {
            if let Some(j) = jobs.iter_mut().find(|j| j.id == job) {
                j.retries += 1;
            }
        }
        JournalEvent::Done { job, digest } => {
            if let Some(j) = jobs.iter_mut().find(|j| j.id == job) {
                j.done = Some(digest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "dvs-journal-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_file(&p);
        p
    }

    fn events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Job {
                id: 1,
                cells: 3,
                kind: "campaign".to_owned(),
            },
            JournalEvent::CellOk {
                job: 1,
                index: 0,
                payload_fnv: 0xabcd,
                wall_nanos: 1_000,
            },
            JournalEvent::CellErr {
                job: 1,
                index: 2,
                class: "deadline".to_owned(),
            },
        ]
    }

    #[test]
    fn events_round_trip_through_the_file() {
        let path = tmp("roundtrip");
        let (mut j, recovered) = Journal::open(&path, false).expect("open");
        assert!(recovered.is_empty());
        for e in events() {
            j.append(&e).expect("append");
        }
        drop(j);
        let (_, recovered) = Journal::open(&path, true).expect("reopen");
        assert_eq!(recovered.len(), 1);
        let job = &recovered[0];
        assert_eq!(job.id, 1);
        assert_eq!(job.kind, "campaign");
        assert_eq!(
            job.outcomes[0],
            Some(CellOutcome::Ok {
                payload_fnv: 0xabcd,
                wall_nanos: 1_000
            })
        );
        assert_eq!(job.outcomes[1], None);
        assert_eq!(
            job.outcomes[2],
            Some(CellOutcome::Err {
                class: "deadline".to_owned()
            })
        );
        assert_eq!(job.pending(), vec![1]);
        assert_eq!(job.done, None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_ignored() {
        let path = tmp("torn");
        {
            let (mut j, _) = Journal::open(&path, false).expect("open");
            for e in events() {
                j.append(&e).expect("append");
            }
        }
        // Simulate a crash mid-append: chop the last line in half.
        let raw = fs::read_to_string(&path).expect("read");
        let cut = raw.len() - 10;
        fs::write(&path, &raw[..cut]).expect("tear");
        let (_, recovered) = Journal::open(&path, false).expect("reopen");
        let job = &recovered[0];
        assert!(job.outcomes[0].is_some(), "intact lines replay");
        assert_eq!(job.outcomes[2], None, "torn line is dropped");
        assert_eq!(job.pending(), vec![1, 2]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_line_stops_replay_conservatively() {
        let path = tmp("midcorrupt");
        {
            let (mut j, _) = Journal::open(&path, false).expect("open");
            for e in events() {
                j.append(&e).expect("append");
            }
        }
        let raw = fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = raw.lines().collect();
        let flipped = lines[1].replace("ok", "ko");
        lines[1] = &flipped;
        fs::write(&path, lines.join("\n") + "\n").expect("corrupt");
        let (_, recovered) = Journal::open(&path, false).expect("reopen");
        let job = &recovered[0];
        assert_eq!(job.outcomes, vec![None, None, None], "replay stopped early");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn retries_and_wall_recover_from_the_journal() {
        let path = tmp("retry");
        {
            let (mut j, _) = Journal::open(&path, false).expect("open");
            for e in events() {
                j.append(&e).expect("append");
            }
            j.append(&JournalEvent::Retry {
                job: 1,
                index: 1,
                attempt: 1,
            })
            .expect("append");
            j.append(&JournalEvent::Retry {
                job: 1,
                index: 1,
                attempt: 2,
            })
            .expect("append");
        }
        let (_, recovered) = Journal::open(&path, false).expect("reopen");
        let job = &recovered[0];
        assert_eq!(job.retries, 2);
        assert_eq!(job.wall_nanos(), 1_000, "only ok cells contribute wall");
        assert_eq!(job.pending(), vec![1], "retries are not terminal");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_yields_each_event_exactly_once() {
        let path = tmp("tail");
        let (mut j, _) = Journal::open(&path, false).expect("open");
        let mut tail = JournalTail::new(&path);
        assert!(tail.poll().expect("poll empty").is_empty());
        for e in events() {
            j.append(&e).expect("append");
            let got = tail.poll().expect("poll");
            assert_eq!(got, vec![Ok(e)]);
        }
        assert!(tail.poll().expect("poll drained").is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_leaves_a_partial_trailing_line_unconsumed() {
        use std::io::Write as _;
        let path = tmp("tail-partial");
        let (mut j, _) = Journal::open(&path, false).expect("open");
        j.append(&events()[0]).expect("append");
        let full = render(&events()[1]);
        let (head, rest) = full.split_at(full.len() / 2);
        let mut raw = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("raw open");
        raw.write_all(head.as_bytes()).expect("half append");
        raw.flush().expect("flush");

        let mut tail = JournalTail::new(&path);
        let got = tail.poll().expect("poll");
        assert_eq!(got, vec![Ok(events()[0].clone())], "in-flight line hidden");

        raw.write_all(rest.as_bytes()).expect("finish append");
        raw.flush().expect("flush");
        assert_eq!(tail.poll().expect("poll"), vec![Ok(events()[1].clone())]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_reports_a_corrupt_line_and_keeps_going() {
        let path = tmp("tail-corrupt");
        {
            let (mut j, _) = Journal::open(&path, false).expect("open");
            for e in events() {
                j.append(&e).expect("append");
            }
        }
        let raw = fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = raw.lines().collect();
        let flipped = lines[1].replace("ok", "ko");
        lines[1] = &flipped;
        fs::write(&path, lines.join("\n") + "\n").expect("corrupt");
        let mut tail = JournalTail::new(&path);
        let got = tail.poll().expect("poll");
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], Ok(events()[0].clone()));
        assert!(got[1].is_err(), "corrupt line surfaces its parse error");
        assert_eq!(got[2], Ok(events()[2].clone()), "tail advances past it");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_of_a_missing_journal_is_empty_not_an_error() {
        let path = tmp("tail-missing");
        let mut tail = JournalTail::new(&path);
        assert!(tail.poll().expect("poll").is_empty());
    }

    #[test]
    fn done_marks_job_finished() {
        let path = tmp("done");
        {
            let (mut j, _) = Journal::open(&path, false).expect("open");
            j.append(&JournalEvent::Job {
                id: 4,
                cells: 1,
                kind: "fuzz hunt".to_owned(),
            })
            .expect("append");
            j.append(&JournalEvent::CellOk {
                job: 4,
                index: 0,
                payload_fnv: 1,
                wall_nanos: 2,
            })
            .expect("append");
            j.append(&JournalEvent::Done {
                job: 4,
                digest: 0xfeed,
            })
            .expect("append");
        }
        let (_, recovered) = Journal::open(&path, false).expect("reopen");
        assert_eq!(recovered[0].done, Some(0xfeed));
        assert_eq!(recovered[0].kind, "fuzz hunt");
        assert!(recovered[0].pending().is_empty());
        let _ = fs::remove_file(&path);
    }
}
