//! Retry with exponential backoff and deterministic jitter.
//!
//! Cells that fail *transiently* — a panic somewhere in the stack, or a
//! cycle-limit trip that a bigger host scheduling slice might avoid — are
//! retried up to a budget, with a delay that doubles per attempt and is
//! jittered per `(cell, attempt)` so a batch of failing cells does not
//! retry in lockstep. The jitter is seeded FNV, not wall-clock randomness:
//! the same cell retries on the same schedule every run, which keeps the
//! service's behavior reproducible under test.

use dvs_campaign::{fnv1a, FNV_OFFSET};
use std::time::Duration;

/// The retry budget and backoff shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Seed folded into the per-(cell, attempt) jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x5e4e,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (1-based: the delay taken
    /// after the `attempt`-th failure) of the cell keyed `cell_key`:
    /// exponential from [`RetryPolicy::base_delay`], capped at
    /// [`RetryPolicy::max_delay`], scaled into `[50%, 100%]` by a
    /// deterministic per-(cell, attempt) jitter.
    pub fn delay(&self, attempt: u32, cell_key: u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.max_delay);
        let mut h = FNV_OFFSET;
        for byte in self
            .jitter_seed
            .to_le_bytes()
            .into_iter()
            .chain(cell_key.to_le_bytes())
            .chain(attempt.to_le_bytes())
        {
            h = fnv1a(h, byte);
        }
        // Map the hash into [512, 1024]/1024 — half to full of the
        // exponential step.
        let scale = 512 + (h % 513) as u32;
        exp * scale / 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_until_the_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(160),
            jitter_seed: 1,
        };
        let d: Vec<Duration> = (1..=8).map(|a| p.delay(a, 42)).collect();
        for (i, d) in d.iter().enumerate() {
            let step = Duration::from_millis(10)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(160));
            assert!(*d >= step / 2 && *d <= step, "attempt {}: {d:?}", i + 1);
        }
        // Capped: late attempts never exceed max_delay.
        assert!(p.delay(30, 42) <= Duration::from_millis(160));
    }

    #[test]
    fn jitter_is_deterministic_and_varies_by_cell() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay(2, 7), p.delay(2, 7), "same inputs, same delay");
        let distinct: std::collections::BTreeSet<Duration> =
            (0..32).map(|cell| p.delay(2, cell)).collect();
        assert!(
            distinct.len() > 8,
            "jitter must spread cells apart: {distinct:?}"
        );
    }

    #[test]
    fn none_policy_allows_a_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
