//! The job service: admission, execution, durability, degradation.
//!
//! [`Serve`] owns one *service directory* containing the write-ahead
//! [`Journal`], the content-addressed [`Store`], and one `job-<id>.cells`
//! file per admitted job (the job's ordered cell-token list, written
//! durably *before* the journal admits the job, so recovery can always
//! re-expand a recovered job into the exact cells it was admitted with).
//!
//! Execution discipline per cell, in order:
//!
//! 1. **Cache lookup.** A clean store hit is journaled as completed with
//!    zero compute wall-clock; a quarantined entry is counted and falls
//!    through to recompute; a miss falls through.
//! 2. **Compute with retry.** Transient failures (panics, cycle limits)
//!    retry up to the [`RetryPolicy`] budget with jittered exponential
//!    backoff; deterministic failures fail immediately. A job deadline
//!    turns not-yet-started attempts into terminal `deadline` failures.
//! 3. **Journal, then cache.** The cell's terminal fact (payload digest or
//!    failure class) is appended to the journal; the payload itself goes to
//!    the store, where a failed or shed write degrades the cache, never the
//!    job.
//!
//! The job digest folds per-cell payload digests *from the journal*, in
//! cell order — so a resumed job reproduces the uninterrupted digest even
//! if every cache write was shed.

use crate::job::{CellSpec, FailureClass, JobSpec};
use crate::journal::{CellOutcome, Journal, JournalEvent, RecoveredJob};
use crate::retry::RetryPolicy;
use crate::store::{self, GcReport, Lookup, PutOutcome, Store, VerifyReport};
use dvs_campaign::{fnv1a, fnv1a_str, parallel_indexed, FNV_OFFSET};
use dvs_telemetry::MetricsRegistry;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the service runs: directory, concurrency, and policies.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The service directory (journal, store, cell lists).
    pub dir: PathBuf,
    /// Worker threads per job.
    pub workers: usize,
    /// Admission limit: unfinished jobs allowed in the directory.
    pub max_pending_jobs: usize,
    /// Per-job compute deadline; cells not started by then fail `deadline`.
    pub deadline: Option<Duration>,
    /// Retry budget for transient cell failures.
    pub retry: RetryPolicy,
    /// Store size budget in bytes (`None` = unbounded).
    pub store_budget: Option<u64>,
    /// Code fingerprint folded into every cache key.
    pub fingerprint: u64,
    /// fsync the journal on every append (crash-safe; the default).
    pub sync_journal: bool,
    /// Debug: sleep this long before each cell compute. Lets crash tests
    /// reliably land a `kill -9` mid-job.
    pub cell_delay: Option<Duration>,
}

impl ServeConfig {
    /// A crash-safe default configuration rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_pending_jobs: 8,
            deadline: None,
            retry: RetryPolicy::default(),
            store_budget: None,
            fingerprint: crate::code_fingerprint(),
            sync_journal: true,
            cell_delay: None,
        }
    }
}

/// Why a job was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The unfinished-job limit is reached; finish or resume first.
    Busy {
        /// Unfinished jobs currently in the directory.
        pending: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The job expands to zero cells.
    Empty,
    /// The durable cell list or journal record could not be written —
    /// without it the job would not survive a crash, so it is refused.
    Io(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Busy { pending, limit } => {
                write!(
                    f,
                    "{pending} unfinished jobs (limit {limit}); resume or gc first"
                )
            }
            AdmissionError::Empty => write!(f, "job expands to zero cells"),
            AdmissionError::Io(e) => write!(f, "could not persist job: {e}"),
        }
    }
}

/// What one `run_job` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobReport {
    /// The job.
    pub id: u64,
    /// Total cells in the job.
    pub cells: usize,
    /// Cells served from the store this call.
    pub hits: usize,
    /// Cells computed (fresh or recomputed) this call.
    pub computed: usize,
    /// Cells that ended in a terminal failure this call.
    pub failed: usize,
    /// Retry attempts spent this call.
    pub retries: usize,
    /// The job's final results digest (worker-count independent).
    pub digest: u64,
    /// Total compute wall-clock this call, in nanoseconds (cache hits
    /// contribute zero). Never part of the digest.
    pub wall_nanos: u64,
}

/// One job's standing, for `status` — recovered entirely from the journal,
/// so it is accurate even for jobs another (crashed) process ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job.
    pub id: u64,
    /// Kind label as journaled.
    pub kind: String,
    /// Total cells.
    pub cells: usize,
    /// Cells with a terminal outcome.
    pub completed: usize,
    /// Cells with no terminal outcome yet.
    pub pending: usize,
    /// Cells that ended in a terminal failure.
    pub failed: usize,
    /// Retry attempts journaled across all the job's cells and runs.
    pub retries: u64,
    /// Compute wall-clock journaled for completed cells, in nanoseconds.
    pub wall_nanos: u64,
    /// Final digest once finished.
    pub digest: Option<u64>,
}

/// Monotonic service counters (shared across jobs and worker threads).
#[derive(Debug, Default)]
struct Counters {
    hit: AtomicU64,
    miss: AtomicU64,
    quarantine: AtomicU64,
    shed: AtomicU64,
    retry: AtomicU64,
    computed: AtomicU64,
    failed: AtomicU64,
    deadline: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Cache hits.
    pub hit: u64,
    /// Cache misses (clean absences, not quarantines).
    pub miss: u64,
    /// Entries quarantined on read.
    pub quarantine: u64,
    /// Cache writes shed (store unavailable, over budget, or I/O error).
    pub shed: u64,
    /// Retry attempts after transient failures.
    pub retry: u64,
    /// Cells computed.
    pub computed: u64,
    /// Cells terminally failed.
    pub failed: u64,
    /// Cells that missed the job deadline.
    pub deadline: u64,
}

impl Counters {
    fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            hit: self.hit.load(Ordering::Relaxed),
            miss: self.miss.load(Ordering::Relaxed),
            quarantine: self.quarantine.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retry: self.retry.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline: self.deadline.load(Ordering::Relaxed),
        }
    }
}

/// The open service.
#[derive(Debug)]
pub struct Serve {
    config: ServeConfig,
    journal: Mutex<Journal>,
    store: Mutex<Store>,
    jobs: Vec<RecoveredJob>,
    counters: Counters,
}

impl Serve {
    /// Opens the service directory, replaying the journal into job state.
    /// A store that cannot be opened degrades the service to compute-only
    /// (every read misses, every write sheds) rather than failing.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or opening the journal — the
    /// journal is the one component the service will not run without.
    pub fn open(config: ServeConfig) -> io::Result<Serve> {
        fs::create_dir_all(&config.dir)?;
        let (journal, jobs) = Journal::open(&config.dir.join("journal.log"), config.sync_journal)?;
        let store = match Store::open(
            &config.dir.join("store"),
            config.fingerprint,
            config.store_budget,
        ) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("dvs-serve: store unavailable ({e}); degrading to compute-only");
                Store::disabled()
            }
        };
        Ok(Serve {
            config,
            journal: Mutex::new(journal),
            store: Mutex::new(store),
            jobs,
            counters: Counters::default(),
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current counter values.
    pub fn counters(&self) -> ServeCounters {
        self.counters.snapshot()
    }

    fn cells_path(&self, id: u64) -> PathBuf {
        self.config.dir.join(format!("job-{id}.cells"))
    }

    /// Admits a job: the expanded cell-token list is written durably, then
    /// the journal records the admission. Returns the new job id.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Busy`] over the unfinished-job limit,
    /// [`AdmissionError::Empty`] for zero-cell jobs, and
    /// [`AdmissionError::Io`] when the durable records cannot be written.
    pub fn submit(&mut self, job: &JobSpec) -> Result<u64, AdmissionError> {
        let cells = job.cells();
        if cells.is_empty() {
            return Err(AdmissionError::Empty);
        }
        let pending = self.jobs.iter().filter(|j| j.done.is_none()).count();
        if pending >= self.config.max_pending_jobs {
            return Err(AdmissionError::Busy {
                pending,
                limit: self.config.max_pending_jobs,
            });
        }
        let id = self.jobs.iter().map(|j| j.id).max().unwrap_or(0) + 1;
        let body: String = cells.iter().map(|c| c.token() + "\n").collect();
        write_durable(&self.cells_path(id), &body)
            .map_err(|e| AdmissionError::Io(e.to_string()))?;
        let kind = job.kind().to_owned();
        self.journal
            .get_mut()
            .expect("journal lock")
            .append(&JournalEvent::Job {
                id,
                cells: cells.len(),
                kind: kind.clone(),
            })
            .map_err(|e| AdmissionError::Io(e.to_string()))?;
        self.jobs.push(RecoveredJob {
            id,
            kind,
            outcomes: vec![None; cells.len()],
            retries: 0,
            done: None,
        });
        Ok(id)
    }

    /// Runs a job's pending cells to terminal state on the worker pool,
    /// journaling each, then seals the job with its final digest. Already-
    /// terminal cells (from a previous run or a crash-interrupted one) are
    /// never re-executed — this is both the warm-cache path and the
    /// crash-resume path.
    ///
    /// # Errors
    ///
    /// Unknown job id, unreadable/garbled cell list, or a cell-list length
    /// that disagrees with the journaled admission.
    pub fn run_job(&mut self, id: u64) -> io::Result<JobReport> {
        let pos = self
            .jobs
            .iter()
            .position(|j| j.id == id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no job {id}")))?;
        let text = fs::read_to_string(self.cells_path(id))?;
        let cells: Vec<CellSpec> = text
            .lines()
            .map(CellSpec::from_token)
            .collect::<Result<_, _>>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if cells.len() != self.jobs[pos].outcomes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "job {id}: cell list has {} cells, journal admitted {}",
                    cells.len(),
                    self.jobs[pos].outcomes.len()
                ),
            ));
        }
        let pending = self.jobs[pos].pending();
        let deadline = self.config.deadline.map(|d| Instant::now() + d);
        let before = self.counters.snapshot();
        let wall = AtomicU64::new(0);

        let this = &*self;
        let fresh: Vec<(usize, CellOutcome)> =
            parallel_indexed(pending.len(), self.config.workers, |slot| {
                let index = pending[slot];
                let outcome = this.run_cell(id, index, &cells[index], deadline, &wall);
                (index, outcome)
            });

        for (index, outcome) in fresh {
            self.jobs[pos].outcomes[index] = Some(outcome);
        }
        let after_retries = self.counters.snapshot().retry;
        self.jobs[pos].retries += after_retries - before.retry;
        let digest = fold_digest(&self.jobs[pos].outcomes);
        if self.jobs[pos].done != Some(digest) {
            if let Err(e) = self
                .journal
                .get_mut()
                .expect("journal lock")
                .append(&JournalEvent::Done { job: id, digest })
            {
                eprintln!("dvs-serve: job {id} done record lost ({e}); next open will re-seal");
            }
            self.jobs[pos].done = Some(digest);
        }
        let after = self.counters.snapshot();
        Ok(JobReport {
            id,
            cells: cells.len(),
            hits: (after.hit - before.hit) as usize,
            computed: (after.computed - before.computed) as usize,
            failed: (after.failed - before.failed) as usize,
            retries: (after.retry - before.retry) as usize,
            digest,
            wall_nanos: wall.load(Ordering::Relaxed),
        })
    }

    /// Drives one cell to a terminal outcome: cache, compute-with-retry,
    /// journal. Runs on worker threads — everything shared is behind a
    /// mutex or atomic.
    fn run_cell(
        &self,
        job: u64,
        index: usize,
        cell: &CellSpec,
        deadline: Option<Instant>,
        wall: &AtomicU64,
    ) -> CellOutcome {
        let token = cell.token();
        match self.store.lock().expect("store lock").get(&token) {
            Lookup::Hit(payload) => {
                self.counters.hit.fetch_add(1, Ordering::Relaxed);
                let outcome = CellOutcome::Ok {
                    payload_fnv: store::payload_fnv(&payload),
                    wall_nanos: 0,
                };
                self.journal_cell(job, index, &outcome);
                return outcome;
            }
            Lookup::Quarantined(reason) => {
                self.counters.quarantine.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "dvs-serve: job {job} cell {index}: entry quarantined ({reason}); recomputing"
                );
            }
            Lookup::Miss => {
                self.counters.miss.fetch_add(1, Ordering::Relaxed);
            }
        }

        let key = store::cell_key(&token, self.config.fingerprint);
        let mut attempt = 1u32;
        let outcome = loop {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    self.counters.deadline.fetch_add(1, Ordering::Relaxed);
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    break CellOutcome::Err {
                        class: "deadline".to_owned(),
                    };
                }
            }
            if let Some(delay) = self.config.cell_delay {
                std::thread::sleep(delay);
            }
            let result = cell.execute();
            wall.fetch_add(result.wall_nanos, Ordering::Relaxed);
            match result.outcome {
                Ok(payload) => {
                    self.counters.computed.fetch_add(1, Ordering::Relaxed);
                    if let PutOutcome::Shed(reason) =
                        self.store.lock().expect("store lock").put(&token, &payload)
                    {
                        self.counters.shed.fetch_add(1, Ordering::Relaxed);
                        eprintln!("dvs-serve: cache write shed ({reason}) for {token}");
                    }
                    break CellOutcome::Ok {
                        payload_fnv: store::payload_fnv(&payload),
                        wall_nanos: result.wall_nanos,
                    };
                }
                Err(failure) => {
                    if failure.class == FailureClass::Transient
                        && attempt < self.config.retry.max_attempts
                    {
                        self.counters.retry.fetch_add(1, Ordering::Relaxed);
                        // Progress-only fact: lost appends degrade status
                        // accuracy, never the digest.
                        if let Err(e) = self.journal.lock().expect("journal lock").append(
                            &JournalEvent::Retry {
                                job,
                                index,
                                attempt,
                            },
                        ) {
                            eprintln!("dvs-serve: retry record lost ({e})");
                        }
                        std::thread::sleep(self.config.retry.delay(attempt, key));
                        attempt += 1;
                        continue;
                    }
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    let class = match failure.class {
                        FailureClass::Deterministic => "deterministic",
                        FailureClass::Transient => "exhausted",
                    };
                    eprintln!(
                        "dvs-serve: job {job} cell {index} failed ({class}): {}",
                        failure.detail
                    );
                    break CellOutcome::Err {
                        class: class.to_owned(),
                    };
                }
            }
        };
        self.journal_cell(job, index, &outcome);
        outcome
    }

    /// Appends a cell's terminal fact. A journal write failure degrades
    /// durability (this cell recomputes after a crash), never the job.
    fn journal_cell(&self, job: u64, index: usize, outcome: &CellOutcome) {
        let event = match outcome {
            CellOutcome::Ok {
                payload_fnv,
                wall_nanos,
            } => JournalEvent::CellOk {
                job,
                index,
                payload_fnv: *payload_fnv,
                wall_nanos: *wall_nanos,
            },
            CellOutcome::Err { class } => JournalEvent::CellErr {
                job,
                index,
                class: class.clone(),
            },
        };
        if let Err(e) = self.journal.lock().expect("journal lock").append(&event) {
            eprintln!("dvs-serve: journal append failed ({e}); cell {job}/{index} not durable");
        }
    }

    /// Runs every unfinished job to completion, oldest first — the
    /// crash-recovery entry point.
    ///
    /// # Errors
    ///
    /// The first failing [`Serve::run_job`] error.
    pub fn resume_all(&mut self) -> io::Result<Vec<JobReport>> {
        let unfinished: Vec<u64> = self
            .jobs
            .iter()
            .filter(|j| j.done.is_none())
            .map(|j| j.id)
            .collect();
        unfinished.into_iter().map(|id| self.run_job(id)).collect()
    }

    /// Every job's standing, in admission order.
    pub fn status(&self) -> Vec<JobStatus> {
        self.jobs
            .iter()
            .map(|j| {
                let pending = j.pending().len();
                let failed = j
                    .outcomes
                    .iter()
                    .filter(|o| matches!(o, Some(CellOutcome::Err { .. })))
                    .count();
                JobStatus {
                    id: j.id,
                    kind: j.kind.clone(),
                    cells: j.outcomes.len(),
                    completed: j.outcomes.len() - pending,
                    pending,
                    failed,
                    retries: j.retries,
                    wall_nanos: j.wall_nanos(),
                    digest: j.done,
                }
            })
            .collect()
    }

    /// Integrity-checks every store entry, quarantining failures.
    pub fn verify_store(&mut self) -> VerifyReport {
        self.store.get_mut().expect("store lock").verify_all()
    }

    /// Evicts stale and over-budget store entries.
    pub fn gc_store(&mut self) -> GcReport {
        self.store.get_mut().expect("store lock").gc()
    }

    /// The service counters as a `dvs-telemetry` metrics tree, under
    /// `serve/cache/*`, `serve/retry/*`, and `serve/cell/*`.
    pub fn metrics(&self) -> MetricsRegistry {
        let c = self.counters.snapshot();
        let mut m = MetricsRegistry::new();
        m.add("serve", "cache", "hit", c.hit);
        m.add("serve", "cache", "miss", c.miss);
        m.add("serve", "cache", "quarantine", c.quarantine);
        m.add("serve", "cache", "shed", c.shed);
        m.add("serve", "retry", "attempts", c.retry);
        m.add("serve", "cell", "computed", c.computed);
        m.add("serve", "cell", "failed", c.failed);
        m.add("serve", "cell", "deadline", c.deadline);
        m
    }
}

/// The job digest: cell order, then per-cell payload digest or failure
/// class. Worker-count independent, wall-clock free, and computable from
/// the journal alone.
fn fold_digest(outcomes: &[Option<CellOutcome>]) -> u64 {
    let mut h = FNV_OFFSET;
    for (index, outcome) in outcomes.iter().enumerate() {
        for byte in (index as u64).to_le_bytes() {
            h = fnv1a(h, byte);
        }
        match outcome {
            Some(CellOutcome::Ok { payload_fnv, .. }) => {
                h = fnv1a_str(h, "ok");
                for byte in payload_fnv.to_le_bytes() {
                    h = fnv1a(h, byte);
                }
            }
            Some(CellOutcome::Err { class }) => {
                h = fnv1a_str(h, "err:");
                h = fnv1a_str(h, class);
            }
            None => h = fnv1a_str(h, "pending"),
        }
    }
    h
}

/// Writes `body` to `path` durably: temp file, flush, fsync, rename.
fn write_durable(path: &Path, body: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.flush()?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)
}
