//! # dvs-serve — a crash-safe, long-lived simulation job service
//!
//! Every other workload in the workspace is a batch CLI: a campaign grid, a
//! fuzz hunt, or a litmus sweep that loses all state when the process dies
//! and recomputes everything on the next invocation. This crate turns those
//! workloads into *jobs* against a persistent service directory:
//!
//! * **Jobs and cells.** A [`JobSpec`] (campaign grid, fuzz hunt, litmus
//!   sweep, or deep model-checking sweep) expands into an ordered list of
//!   [`CellSpec`]s — one simulation each, addressed by a canonical text
//!   token. Cells execute on a bounded
//!   worker pool ([`dvs_campaign::parallel_indexed`]) with per-job
//!   admission control and deadlines.
//! * **Content-addressed caching.** Every completed cell's result payload
//!   is stored in a [`Store`] keyed by the FNV-1a digest of
//!   `(cell token, code fingerprint)`. Re-running the same cell on the same
//!   code serves the stored payload byte-identically; changing either the
//!   spec or the code misses and recomputes.
//! * **Crash safety.** A write-ahead [`Journal`] records every submitted
//!   job and every completed cell before the result is considered durable.
//!   A `kill -9` mid-job loses at most the cells in flight; reopening the
//!   service resumes from the last completed cell, and the final job digest
//!   is byte-identical to an uninterrupted run.
//! * **Integrity.** Stored payloads carry their own digest, re-checked on
//!   every read. Truncated, bit-flipped, or stale-fingerprint entries are
//!   quarantined (moved aside for forensics) and transparently recomputed.
//! * **Graceful degradation.** When the store directory is unavailable or
//!   the size budget is exhausted, the service sheds cache *writes* and
//!   keeps serving compute. Hit/miss/quarantine/shed/retry counters are
//!   exported as a `dvs-telemetry` [`MetricsRegistry`](dvs_telemetry::MetricsRegistry).
//!
//! The `dvs-serve` binary wires it together: `submit` / `resume` / `status`
//! / `verify-store` / `gc`.

pub mod job;
pub mod journal;
pub mod retry;
pub mod service;
pub mod store;

pub use job::{CellFailure, CellResult, CellSpec, DeepCheckMode, FailureClass, JobSpec};
pub use journal::{CellOutcome, Journal, JournalEvent, JournalTail, RecoveredJob};
pub use retry::RetryPolicy;
pub use service::{AdmissionError, JobReport, JobStatus, Serve, ServeConfig, ServeCounters};
pub use store::{GcReport, Lookup, PutOutcome, Store, VerifyReport};

use dvs_campaign::{fnv1a_str, FNV_OFFSET};

/// Bumped whenever simulated results may change shape or value — protocol
/// semantics, statistics accounting, payload layout. Entries written by a
/// different revision are *stale*: quarantined on contact and recomputed.
pub const STORE_REVISION: u64 = 1;

/// The code fingerprint baked into every store key: a digest of the crate
/// version and [`STORE_REVISION`]. Cheap and deterministic; bumping the
/// revision (or releasing a new version) invalidates the whole store, which
/// is exactly the conservative behavior a result cache wants.
pub fn code_fingerprint() -> u64 {
    let mut h = fnv1a_str(FNV_OFFSET, env!("CARGO_PKG_VERSION"));
    for byte in STORE_REVISION.to_le_bytes() {
        h = dvs_campaign::fnv1a(h, byte);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(code_fingerprint(), code_fingerprint());
        assert_ne!(code_fingerprint(), 0);
    }
}
