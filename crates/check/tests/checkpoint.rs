//! Checkpoint/resume drills for the iterative-deepening driver: an
//! interrupted run — whether the interruption is a fired round budget or a
//! `kill -9` between rounds — resumes from its checkpoint file and reports
//! the *same* verdict and the same cumulative exact-mode `unique_states`
//! as an uninterrupted run. A checkpoint that cannot be trusted (bit flip,
//! truncation, wrong model) is rejected with a hard error before anything
//! is explored — never silently skipped.

use dvs_check::checkpoint::CheckpointError;
use dvs_check::{
    deepen_litmus, explore, litmus_root, CheckConfig, Checkpoint, DeepenConfig, Verdict,
};
use dvs_core::config::Protocol;
use dvs_core::system::System;
use dvs_vm::litmus;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// A per-test scratch path in the system temp dir, removed on drop.
struct TmpPath(PathBuf);

impl TmpPath {
    fn new(name: &str) -> TmpPath {
        TmpPath(std::env::temp_dir().join(format!("dvs-ckpt-test-{}-{name}", std::process::id())))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TmpPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn deepen_cfg(checkpoint: Option<PathBuf>, round_states: u64) -> DeepenConfig {
    DeepenConfig {
        base: CheckConfig::default(),
        start_depth: 6,
        step: 6,
        max_depth: 60,
        round_states,
        checkpoint,
        round_delay: None,
    }
}

/// Budget-truncation variant: a run whose round budget fires mid-deepening
/// leaves the previous round's checkpoint on disk; resuming it with the
/// budget lifted reproduces the uninterrupted run's verdict and cumulative
/// unique-state count exactly.
#[test]
fn budget_truncated_run_resumes_to_the_uninterrupted_result() {
    let lit = litmus::tatas();
    let uninterrupted = deepen_litmus(&lit, Protocol::Mesi, None, &deepen_cfg(None, u64::MAX))
        .expect("no checkpoint file involved");
    assert!(matches!(uninterrupted.report.verdict, Verdict::Verified));
    assert!(!uninterrupted.resumed);

    // Self-calibrate the interrupting budget: walk a ladder until some
    // round *after* the first completed one exhausts it — that leaves a
    // checkpoint on disk and a state-truncated report.
    let ckpt = TmpPath::new("budget");
    let mut budget = 10u64;
    let interrupted = loop {
        assert!(budget < 1_000_000, "no budget interrupts mid-deepening");
        let out = deepen_litmus(
            &lit,
            Protocol::Mesi,
            None,
            &deepen_cfg(Some(ckpt.path().to_path_buf()), budget),
        )
        .expect("a fresh checkpoint path never fails to load");
        if out.report.stats.state_truncated && ckpt.path().exists() {
            break out;
        }
        // Budget too small (round 1 itself truncated: nothing saved) or
        // too large (run completed: checkpoint deleted) — step up.
        assert!(!ckpt.path().exists());
        budget = budget * 3 / 2 + 1;
    };
    assert!(matches!(interrupted.report.verdict, Verdict::Verified));

    let resumed = deepen_litmus(
        &lit,
        Protocol::Mesi,
        None,
        &deepen_cfg(Some(ckpt.path().to_path_buf()), u64::MAX),
    )
    .expect("checkpoint written by deepen loads");
    assert!(resumed.resumed, "run did not pick up the checkpoint");
    assert!(matches!(resumed.report.verdict, Verdict::Verified));
    assert_eq!(
        resumed.report.stats.unique_states, uninterrupted.report.stats.unique_states,
        "resumed cumulative unique-state count diverged from the uninterrupted run"
    );
    assert!(
        resumed.rounds < uninterrupted.rounds,
        "resume re-ran rounds the checkpoint had already completed"
    );
    assert!(
        !ckpt.path().exists(),
        "completed run must remove its checkpoint"
    );
}

fn token<'o>(line: &'o str, key: &str) -> &'o str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= token in {line:?}"))
}

fn run_bin(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_dvs-check"))
        .args(args)
        .output()
        .expect("dvs-check runs");
    assert!(
        out.status.success(),
        "dvs-check {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// SIGKILL variant: the dvs-check binary is killed with signal 9 mid-
/// deepening (round delays widen the window), then relaunched on the same
/// checkpoint file. The resumed process reports `resumed=true` and the
/// same verdict and unique-state count as an uninterrupted invocation.
#[test]
fn sigkill_mid_run_resumes_to_the_uninterrupted_result() {
    let model = ["--litmus", "tatas", "--proto", "M"];
    let bounds = ["--start", "6", "--step", "2", "--max-depth", "40"];
    let uninterrupted = run_bin(&[&["deepen"][..], &model[..], &bounds[..]].concat());
    assert_eq!(token(&uninterrupted, "verdict"), "verified");

    let ckpt = TmpPath::new("sigkill");
    let ckpt_str = ckpt.path().to_str().expect("utf8 temp path").to_string();
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvs-check"))
        .args([&["deepen"][..], &model[..], &bounds[..]].concat())
        .args(["--checkpoint", &ckpt_str, "--round-delay-ms", "500"])
        .spawn()
        .expect("dvs-check spawns");
    // Wait for the first checkpoint to land, then kill -9 — mid-run, with
    // no chance for cleanup.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ckpt.path().exists() {
        assert!(
            Instant::now() < deadline,
            "no checkpoint file appeared within 60s"
        );
        assert!(
            child.try_wait().expect("child wait").is_none(),
            "dvs-check finished before it could be killed; widen the delay"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("kill -9");
    let status = child.wait().expect("child reaped");
    assert!(!status.success(), "killed process cannot exit cleanly");
    assert!(ckpt.path().exists(), "kill must not remove the checkpoint");

    let resumed = run_bin(
        &[
            &["deepen"][..],
            &model[..],
            &bounds[..],
            &["--checkpoint", &ckpt_str][..],
        ]
        .concat(),
    );
    assert_eq!(token(&resumed, "resumed"), "true");
    assert_eq!(token(&resumed, "verdict"), "verified");
    assert_eq!(
        token(&resumed, "unique"),
        token(&uninterrupted, "unique"),
        "resumed unique-state count diverged\n  uninterrupted: {uninterrupted}  resumed: {resumed}"
    );
    assert!(
        !ckpt.path().exists(),
        "completed run must remove its checkpoint"
    );
}

/// A genuine checkpoint for the tatas/MESI model: explore to a shallow
/// depth bound with frontier collection on, and wrap the result.
fn genuine_checkpoint() -> Checkpoint {
    let root = litmus_root(&litmus::tatas(), Protocol::Mesi, None);
    let cfg = CheckConfig {
        max_depth: 6,
        collect_frontier: true,
        ..CheckConfig::default()
    };
    let report = explore(&root, &|_: &System| Ok(()), &cfg);
    assert!(!report.frontier.is_empty(), "depth 6 must truncate tatas");
    Checkpoint {
        root_fp: root.fingerprint(),
        depth: 6,
        round: 1,
        stats: report.stats,
        frontier: report.frontier,
    }
}

/// Save/load is lossless for everything a resume consumes.
#[test]
fn checkpoint_round_trips_through_its_file() {
    let ck = genuine_checkpoint();
    let path = TmpPath::new("roundtrip");
    ck.save(path.path()).expect("save");
    let loaded = Checkpoint::load(path.path()).expect("load");
    assert_eq!(loaded, ck);
}

/// Every way a checkpoint file can lie — a flipped bit anywhere, a torn
/// (truncated) tail, garbage content — is a hard `Corrupt` rejection, and
/// [`deepen_litmus`] propagates it without exploring or deleting the file.
#[test]
fn corrupt_checkpoints_are_rejected_not_skipped() {
    let ck = genuine_checkpoint();
    let path = TmpPath::new("corrupt");
    ck.save(path.path()).expect("save");
    let pristine = std::fs::read(path.path()).expect("read back");

    let expect_corrupt = |bytes: &[u8], what: &str| {
        std::fs::write(path.path(), bytes).expect("write corrupted");
        match Checkpoint::load(path.path()) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("{what}: want Corrupt, got {other:?}"),
        }
        // The deepening driver refuses the same way, before exploring.
        let cfg = deepen_cfg(Some(path.path().to_path_buf()), u64::MAX);
        match deepen_litmus(&litmus::tatas(), Protocol::Mesi, None, &cfg) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("{what}: deepen must reject, got {other:?}"),
        }
        assert!(
            path.path().exists(),
            "{what}: rejection must never delete the file"
        );
    };

    // A flipped bit at several offsets: magic, header, frontier, checksum.
    for &offset in &[0, 9, 40, pristine.len() / 2, pristine.len() - 1] {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0x10;
        expect_corrupt(&bytes, &format!("bit flip at byte {offset}"));
    }
    // Torn writes: every truncation point is rejected.
    for &cut in &[0, 7, 30, pristine.len() / 2, pristine.len() - 1] {
        expect_corrupt(&pristine[..cut], &format!("truncated to {cut} bytes"));
    }
    // Trailing garbage after a valid image.
    let mut padded = pristine.clone();
    padded.extend_from_slice(&[0xAB; 3]);
    expect_corrupt(&padded, "trailing bytes");
}

/// A well-formed checkpoint for a *different* model (root fingerprint
/// mismatch) is a `ModelMismatch` rejection: resuming tatas's frontier
/// into sb's state space would silently explore the wrong model.
#[test]
fn checkpoints_are_bound_to_their_model() {
    let ck = genuine_checkpoint(); // tatas under MESI
    let path = TmpPath::new("mismatch");
    ck.save(path.path()).expect("save");
    let cfg = deepen_cfg(Some(path.path().to_path_buf()), u64::MAX);
    match deepen_litmus(&litmus::sb(), Protocol::Mesi, None, &cfg) {
        Err(CheckpointError::ModelMismatch { expected, found }) => {
            assert_eq!(found, ck.root_fp);
            assert_ne!(expected, found);
        }
        other => panic!("want ModelMismatch, got {other:?}"),
    }
    assert!(path.path().exists(), "rejection must never delete the file");
}
