//! End-to-end model-checker tests: every litmus test verifies clean under
//! every protocol, every seeded protocol mutation is caught with a
//! minimized, deterministically replayable counterexample, and results do
//! not depend on the worker count.

use dvs_check::{
    check_litmus, replay_litmus, swarm_litmus, CheckConfig, Failure, SwarmConfig, Verdict,
    VisitedMode,
};
use dvs_core::config::{Protocol, ProtocolMutation};
use dvs_core::system::SimError;
use dvs_vm::litmus::{self, Litmus};

fn cfg(workers: usize) -> CheckConfig {
    CheckConfig {
        workers,
        ..CheckConfig::default()
    }
}

/// Every litmus test, under every protocol, explores its complete state
/// space without finding an invariant violation, deadlock, or SC failure.
#[test]
fn all_litmus_verified_under_all_protocols() {
    for lit in Litmus::all() {
        for proto in Protocol::EXTENDED {
            let report = check_litmus(&lit, proto, None, &cfg(2));
            match &report.verdict {
                Verdict::Verified => {}
                Verdict::Violated(ce) => panic!(
                    "{} under {proto:?}: unexpected violation after {} picks: {}\n  picks: {:?}",
                    lit.name,
                    ce.picks.len(),
                    ce.failure,
                    ce.picks
                ),
            }
            assert!(
                report.stats.complete(),
                "{} under {proto:?}: exploration truncated ({:?})",
                lit.name,
                report.stats
            );
            assert!(report.stats.unique_states > 1);
        }
    }
}

/// The mutations each litmus test is expected to catch, and the protocol
/// they apply to. A mutation is only observable if some interleaving makes
/// a core rely on the dropped action. Under MESI, real `Inv`/`InvAck`
/// traffic needs a line in S at one core while another upgrades to M —
/// single-reader lines ride the E-state ownership-transfer path instead —
/// which is exactly the TATAS contended-lock shape: the spin loser holds an
/// S copy (downgrading the winner via FwdGetS) that the winner's release
/// must invalidate. The DeNovo registry mutations need two cores contending
/// for registration of one word, which SB's and MP's sync variables give.
/// The GCS mutations need a word to get *classified* first (a sync access
/// hitting a registration held by another core): FAI's contended counter
/// classifies and then loses the skipped bank-side increment (the observed
/// old values collide), and MP's spun-on flag classifies, parks the
/// consumer in the waiter set, and deadlocks when the wakeup notification
/// is suppressed.
fn mutation_cases() -> Vec<(&'static str, Protocol, ProtocolMutation)> {
    vec![
        (
            "tatas",
            Protocol::Mesi,
            ProtocolMutation::MesiSkipInvalidate,
        ),
        ("tatas", Protocol::Mesi, ProtocolMutation::MesiDropAck),
        (
            "sb",
            Protocol::DeNovoSync0,
            ProtocolMutation::DnvSkipRepoint,
        ),
        ("mp", Protocol::DeNovoSync, ProtocolMutation::DnvDropXfer),
        ("fai", Protocol::Gcs, ProtocolMutation::GcsSkipUpdate),
        ("mp", Protocol::Gcs, ProtocolMutation::GcsDropNotify),
    ]
}

/// Every seeded protocol bug is detected within the default bounds, and the
/// counterexample is the minimizer's (shortest, canonical) schedule.
#[test]
fn mutations_are_caught_with_minimized_counterexamples() {
    for (name, proto, mutation) in mutation_cases() {
        let lit = Litmus::by_name(name).unwrap();
        let report = check_litmus(&lit, proto, Some(mutation), &cfg(2));
        let Verdict::Violated(ce) = &report.verdict else {
            panic!("{name} under {proto:?} with {mutation:?}: bug not caught ({report:?})");
        };
        assert!(
            ce.minimized,
            "{name}/{mutation:?}: counterexample not minimized"
        );
        assert!(
            !ce.picks.is_empty(),
            "{name}/{mutation:?}: empty counterexample"
        );
    }
}

/// Replaying an exported counterexample schedule on a fresh system
/// reproduces the same failure, deterministically (twice).
#[test]
fn counterexamples_replay_deterministically() {
    for (name, proto, mutation) in mutation_cases() {
        let lit = Litmus::by_name(name).unwrap();
        let report = check_litmus(&lit, proto, Some(mutation), &cfg(2));
        let Verdict::Violated(ce) = report.verdict else {
            panic!("{name} under {proto:?} with {mutation:?}: bug not caught");
        };
        let first = replay_litmus(&lit, proto, Some(mutation), &ce)
            .unwrap_or_else(|e| panic!("{name}/{mutation:?}: {e}"));
        let second = replay_litmus(&lit, proto, Some(mutation), &ce)
            .unwrap_or_else(|e| panic!("{name}/{mutation:?}: {e}"));
        assert_eq!(
            first, second,
            "{name}/{mutation:?}: replay not deterministic"
        );
        assert_eq!(
            first, ce.failure,
            "{name}/{mutation:?}: replay shows a different failure than the checker"
        );
        // A replayed simulator failure carries forensics: the violation
        // detail is stamped with the delivery ordinal, and deadlocks carry
        // a stall report.
        if let Failure::Sim(e) = &first {
            match e {
                SimError::ProtocolViolation { detail, .. } => {
                    assert!(
                        detail.contains("[delivery #"),
                        "violation detail lacks delivery ordinal: {detail}"
                    );
                }
                SimError::Deadlock { report, .. } => {
                    assert!(!report.cores.is_empty(), "empty stall report");
                }
                _ => {}
            }
        }
    }
}

/// Verdict, minimized counterexample, and the deterministic statistics are
/// identical for 1, 2, and 4 workers.
#[test]
fn results_do_not_depend_on_worker_count() {
    // A clean case: the full deterministic fixpoint is reached, so the
    // unique-state count must match exactly.
    let lit = litmus::sb();
    let base = check_litmus(&lit, Protocol::DeNovoSync0, None, &cfg(1));
    assert_eq!(base.verdict, Verdict::Verified);
    for workers in [2, 4] {
        let r = check_litmus(&lit, Protocol::DeNovoSync0, None, &cfg(workers));
        assert_eq!(
            r.verdict, base.verdict,
            "{workers} workers: verdict differs"
        );
        assert_eq!(
            r.stats.unique_states, base.stats.unique_states,
            "{workers} workers: explored a different state set"
        );
    }
    // A violating case: the minimized counterexample must be bit-identical.
    let (name, proto, mutation) = (
        "tatas",
        Protocol::Mesi,
        ProtocolMutation::MesiSkipInvalidate,
    );
    let lit = Litmus::by_name(name).unwrap();
    let base = check_litmus(&lit, proto, Some(mutation), &cfg(1));
    let Verdict::Violated(base_ce) = base.verdict else {
        panic!("bug not caught at 1 worker");
    };
    for workers in [2, 4] {
        let r = check_litmus(&lit, proto, Some(mutation), &cfg(workers));
        let Verdict::Violated(ce) = r.verdict else {
            panic!("bug not caught at {workers} workers");
        };
        assert_eq!(ce, base_ce, "{workers} workers: different counterexample");
    }
}

/// Soundness cross-check: on every small litmus × protocol cell, bitstate
/// mode at a generous filter size reaches the same verdict as exact mode,
/// and its (lossy) unique-state count never exceeds the exact one — the
/// filter can only under-explore, never fabricate states or violations.
///
/// Bitstate runs reduction-free here: a bitstate revisit is pruned
/// unconditionally (the filter stores no sleep set to weaken), so composing
/// it with sleep sets can prune states POR would otherwise recover — fine
/// for a lossy deep run, but this test wants guaranteed full coverage, and
/// POR preserves the reachable state *set* (see `por_preserves_the_state_
/// set`), so the exact-mode count is directly comparable.
#[test]
fn bitstate_agrees_with_exact_on_clean_cells() {
    // Single-worker: the bitstate new-insert counter is exact only without
    // concurrent inserts (two workers racing one fingerprint across the
    // filter's words can double-count it).
    let bitstate = CheckConfig {
        visited: VisitedMode::Bitstate { bits: 1 << 22 },
        workers: 1,
        por: false,
        ..CheckConfig::default()
    };
    for lit in Litmus::all() {
        for proto in Protocol::EXTENDED {
            let exact = check_litmus(&lit, proto, None, &cfg(2));
            let lossy = check_litmus(&lit, proto, None, &bitstate);
            assert_eq!(
                exact.verdict, lossy.verdict,
                "{} under {proto:?}: bitstate verdict differs from exact",
                lit.name
            );
            assert!(
                lossy.stats.unique_states <= exact.stats.unique_states,
                "{} under {proto:?}: bitstate claims more states ({}) than exist ({})",
                lit.name,
                lossy.stats.unique_states,
                exact.stats.unique_states
            );
            assert!(lossy.stats.filter_bits >= 1 << 22);
            assert!(lossy.stats.filter_fill_ratio() < 0.01);
        }
    }
}

/// All six seeded protocol mutations are still caught — with the same
/// minimized counterexamples exact mode produces — when the visited set is
/// a lossy bitstate filter. (Minimization runs from the true root without
/// the filter, so a catch is a catch regardless of mode.)
#[test]
fn mutations_are_caught_in_bitstate_mode() {
    let bitstate = CheckConfig {
        visited: VisitedMode::Bitstate { bits: 1 << 22 },
        workers: 2,
        por: false,
        ..CheckConfig::default()
    };
    for (name, proto, mutation) in mutation_cases() {
        let lit = Litmus::by_name(name).unwrap();
        let exact = check_litmus(&lit, proto, Some(mutation), &cfg(2));
        let lossy = check_litmus(&lit, proto, Some(mutation), &bitstate);
        let Verdict::Violated(ce) = &lossy.verdict else {
            panic!("{name}/{mutation:?}: bug not caught in bitstate mode");
        };
        assert!(ce.minimized, "{name}/{mutation:?}: not minimized");
        assert_eq!(
            lossy.verdict, exact.verdict,
            "{name}/{mutation:?}: bitstate found a different counterexample than exact"
        );
    }
}

/// All six seeded protocol mutations are caught by a swarm of randomized
/// probes, with the standard minimized counterexample on every hit.
#[test]
fn mutations_are_caught_in_swarm_mode() {
    let swarm = SwarmConfig {
        probes: 256,
        workers: 2,
        probe_depth: 2_000,
        probe_states: 50_000,
        filter_bits: 1 << 22,
        seed: 0xDE40,
    };
    for (name, proto, mutation) in mutation_cases() {
        let lit = Litmus::by_name(name).unwrap();
        let report = swarm_litmus(&lit, proto, Some(mutation), &swarm);
        let Verdict::Violated(ce) = &report.verdict else {
            panic!("{name}/{mutation:?}: bug not caught by the swarm");
        };
        assert!(ce.minimized, "{name}/{mutation:?}: not minimized");
        assert!(
            !ce.picks.is_empty(),
            "{name}/{mutation:?}: empty counterexample"
        );
        // The swarm's minimizer runs the same sequential pass as exact
        // mode, so the counterexample must match exact mode's exactly.
        let exact = check_litmus(&lit, proto, Some(mutation), &cfg(2));
        assert_eq!(
            report.verdict, exact.verdict,
            "{name}/{mutation:?}: swarm counterexample differs from exact"
        );
    }
}

/// A clean cell stays clean under the swarm, and the report is explicit
/// that swarm coverage is bounded (never claims completeness).
#[test]
fn swarm_never_claims_completeness() {
    let swarm = SwarmConfig {
        probes: 32,
        workers: 2,
        seed: 7,
        ..SwarmConfig::default()
    };
    let report = swarm_litmus(&litmus::sb(), Protocol::Mesi, None, &swarm);
    assert_eq!(report.verdict, Verdict::Verified);
    assert!(
        !report.stats.complete(),
        "a lossy swarm run must not claim a complete exploration"
    );
    assert!(report.stats.unique_states > 1);
}

/// Partial-order reduction does not change the verdict or the reachable
/// state set — it only prunes redundant paths into the same states.
#[test]
fn por_preserves_the_state_set() {
    let lit = litmus::corr();
    for proto in Protocol::EXTENDED {
        let with = check_litmus(&lit, proto, None, &cfg(1));
        let without = check_litmus(
            &lit,
            proto,
            None,
            &CheckConfig {
                por: false,
                workers: 1,
                ..CheckConfig::default()
            },
        );
        assert_eq!(with.verdict, Verdict::Verified);
        assert_eq!(without.verdict, Verdict::Verified);
        assert_eq!(
            with.stats.unique_states, without.stats.unique_states,
            "{proto:?}: POR changed the reachable state set"
        );
        assert!(
            with.stats.transitions_fired <= without.stats.transitions_fired,
            "{proto:?}: POR fired more transitions than full exploration"
        );
    }
}
