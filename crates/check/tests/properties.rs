//! Property tests for the bitstate/Bloom filter — the soundness-critical
//! half of the lossy visited tier. The filter is allowed false *positives*
//! (a new state mistaken for seen, causing under-exploration); it must
//! never produce a false *negative* (a seen state mistaken for new is
//! harmless for soundness but would break the probe-budget accounting and
//! the determinism argument), and its final contents must not depend on
//! insert order or thread count.

use dvs_check::BitstateFilter;
use dvs_engine::DetRng;

fn seeded_fps(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Insert-then-query always hits: across many filter sizes (including the
/// pathological minimum) and many seeds, no inserted fingerprint is ever
/// reported absent.
#[test]
fn no_false_negatives() {
    for bits in [64, 1 << 10, (1 << 16) + 8, 1 << 20] {
        for seed in 0..8 {
            let filter = BitstateFilter::new(bits);
            let fps = seeded_fps(seed, 4_000);
            for &fp in &fps {
                filter.insert(fp);
            }
            for &fp in &fps {
                assert!(
                    filter.contains(fp),
                    "false negative: fp {fp:#x} lost from a {bits}-bit filter (seed {seed})"
                );
            }
        }
    }
}

/// A fingerprint's membership is decided by its own probe bits alone, so
/// the final bit array is the OR of per-fingerprint masks — identical no
/// matter how inserts are ordered or raced across 1, 2, or 4 threads.
#[test]
fn membership_is_deterministic_across_worker_counts() {
    let fps = seeded_fps(42, 50_000);
    let run = |workers: usize| {
        let filter = BitstateFilter::new(1 << 20);
        std::thread::scope(|scope| {
            for chunk in fps.chunks(fps.len().div_ceil(workers)) {
                let filter = &filter;
                scope.spawn(move || {
                    for &fp in chunk {
                        filter.insert(fp);
                    }
                });
            }
        });
        filter
    };
    let base = run(1);
    for workers in [2, 4] {
        let f = run(workers);
        assert_eq!(
            f.snapshot(),
            base.snapshot(),
            "{workers} workers produced a different filter bit array"
        );
        assert_eq!(f.bits_set(), base.bits_set());
        // Probes of the *same* set of fingerprints answer identically.
        for &fp in fps.iter().step_by(97) {
            assert!(f.contains(fp));
        }
    }
}

/// The closed-form fill prediction `1 - (1 - 1/m)^(k·n)` tracks the ground
/// truth (popcount of the live array) at light, moderate, and heavy loads.
/// `n` counts *successful* new inserts, so the prediction is biased low —
/// a fresh fingerprint absorbed by a collision is invisible to it — and
/// the bias grows with the fill, hence the load-scaled tolerances.
#[test]
fn fill_ratio_estimate_tracks_ground_truth() {
    let filter = BitstateFilter::new(1 << 16);
    let fps = seeded_fps(7, 20_000);
    let mut checked_loads = 0;
    // ~4.5%, ~37%, and ~60% fill.
    for (i, &fp) in fps.iter().enumerate() {
        filter.insert(fp);
        let tolerance = match i {
            1_000 => 0.005,
            10_000 => 0.02,
            19_999 => 0.04,
            _ => continue,
        };
        let truth = filter.fill_ratio();
        let predicted = filter.predicted_fill_ratio();
        assert!(
            (truth - predicted).abs() < tolerance,
            "after {} inserts: ground-truth fill {truth:.4} vs predicted {predicted:.4}",
            i + 1
        );
        checked_loads += 1;
    }
    assert_eq!(checked_loads, 3);
    // The collision probability is the k-th power of the fill and must be
    // consistent with it.
    let p = filter.collision_probability();
    let fill = filter.fill_ratio();
    assert!((p - fill.powi(3)).abs() < 1e-12);
    assert!(p > 0.0 && p < 1.0);
}

/// Unique-insert accounting: single-threaded, the counter is exactly the
/// number of distinct fingerprints whose insert found a clear bit — and a
/// re-insert of a seen fingerprint never counts.
#[test]
fn reinserts_do_not_count_as_new() {
    let filter = BitstateFilter::new(1 << 20);
    let fps = seeded_fps(3, 1_000);
    let mut fresh = 0;
    for &fp in &fps {
        if filter.insert(fp) {
            fresh += 1;
        }
    }
    assert_eq!(fresh, filter.unique_inserts());
    for &fp in &fps {
        assert!(!filter.insert(fp), "re-insert of {fp:#x} reported as new");
    }
    assert_eq!(fresh, filter.unique_inserts());
}
