//! CI smoke stage for the model checker (see `scripts/ci.sh`).
//!
//! Bounded-depth check of the two smallest litmus tests under every
//! protocol (all four, GCS included) — each space is small enough to
//! explore exhaustively in well under a minute even on one CPU — plus two
//! seeded-mutation cells (one MESI, one GCS) to prove the detection path
//! end to end (found, minimized, replayed). The full matrix, including
//! TATAS and all six mutations, lives in `crates/check/tests/check.rs`
//! and the `check_matrix` bench.

use dvs_check::{check_litmus, replay_litmus, CheckConfig, Verdict};
use dvs_core::config::{Protocol, ProtocolMutation};
use dvs_vm::litmus::Litmus;

fn main() {
    let cfg = CheckConfig {
        workers: 2,
        max_depth: 200,
        max_states: 100_000,
        ..CheckConfig::default()
    };

    for name in ["corr", "sb"] {
        let lit = Litmus::by_name(name).expect("suite litmus");
        for proto in Protocol::EXTENDED {
            let report = check_litmus(&lit, proto, None, &cfg);
            assert_eq!(
                report.verdict,
                Verdict::Verified,
                "{name} on {proto:?} must verify"
            );
            assert!(report.stats.complete(), "{name} on {proto:?} truncated");
            // Print only worker-schedule-independent quantities so two runs
            // of this binary diff clean (expansion/transition counts vary
            // with thread scheduling; the state set does not).
            println!(
                "ok {name:5} {proto:?}: {} states",
                report.stats.unique_states
            );
        }
    }

    // Negative controls: seeded protocol bugs must be caught and replay —
    // one on the MESI invalidation path, one on the GCS notify path (a
    // dropped wakeup strands the mp consumer's spin).
    for (name, proto, mutation) in [
        (
            "tatas",
            Protocol::Mesi,
            ProtocolMutation::MesiSkipInvalidate,
        ),
        ("mp", Protocol::Gcs, ProtocolMutation::GcsDropNotify),
    ] {
        let lit = Litmus::by_name(name).expect("suite litmus");
        let report = check_litmus(&lit, proto, Some(mutation), &cfg);
        let Verdict::Violated(ce) = &report.verdict else {
            panic!("{mutation:?} must be caught on {} / {proto:?}", lit.name);
        };
        let replayed =
            replay_litmus(&lit, proto, Some(mutation), ce).expect("counterexample replays");
        println!(
            "ok {name} {proto:?} + {mutation:?}: caught in {} deliveries ({replayed})",
            ce.picks.len()
        );
    }
    println!("checker smoke OK");
}
