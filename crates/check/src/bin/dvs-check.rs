//! `dvs-check`: the model checker's command line.
//!
//! Drives the deep-exploration modes against the litmus suite — exhaustive
//! (exact or bitstate visited tier, optional spill budget), iterative
//! deepening with a resumable frontier checkpoint, and swarm probing. One
//! result line goes to stdout as stable `key=value` tokens so shell drills
//! (`scripts/ci.sh --stage check-scale`) and tests can parse it; the exit
//! code is 0 for a verified run, 3 for a violation, 2 for usage errors.
//!
//! ```text
//! dvs-check explore --litmus tatas4 --proto M [--bitstate BITS] [--spill-budget BYTES]
//! dvs-check deepen  --litmus tatas8 --proto DS --checkpoint f.ckpt [--round-delay-ms 200]
//! dvs-check swarm   --litmus tatas  --proto M --mutation mesi-skip-invalidate
//! ```

use dvs_check::{
    check_litmus, deepen_litmus, swarm_litmus, CheckConfig, CheckReport, DeepenConfig, SwarmConfig,
    Verdict, VisitedMode,
};
use dvs_core::config::{Protocol, ProtocolMutation};
use dvs_stats::report::peak_rss_bytes;
use dvs_vm::litmus::Litmus;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const MUTATIONS: [(&str, ProtocolMutation); 6] = [
    ("dnv-skip-repoint", ProtocolMutation::DnvSkipRepoint),
    ("dnv-drop-xfer", ProtocolMutation::DnvDropXfer),
    ("mesi-skip-invalidate", ProtocolMutation::MesiSkipInvalidate),
    ("mesi-drop-ack", ProtocolMutation::MesiDropAck),
    ("gcs-drop-notify", ProtocolMutation::GcsDropNotify),
    ("gcs-skip-update", ProtocolMutation::GcsSkipUpdate),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: dvs-check <explore|deepen|swarm> --litmus <name> --proto <M|DS0|DS|GCS> [options]\n\
         common: --mutation <tok> --workers N\n\
         explore: --max-depth N --max-states N --bitstate BITS --spill-budget BYTES --no-por\n\
         deepen:  --start N --step N --max-depth N --round-states N --checkpoint FILE\n\
                  --round-delay-ms N --bitstate BITS --spill-budget BYTES\n\
         swarm:   --probes N --probe-depth N --probe-states N --bits N --seed N"
    );
    ExitCode::from(2)
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected argument {flag:?}"));
            };
            if name == "no-por" {
                flags.push((name.to_string(), String::new()));
                continue;
            }
            let Some(value) = it.next() else {
                return Err(format!("--{name} needs a value"));
            };
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{name} {v:?}")),
        }
    }
}

fn model(args: &Args) -> Result<(Litmus, Protocol, Option<ProtocolMutation>), String> {
    let name = args.get("litmus").ok_or("--litmus is required")?;
    let lit = Litmus::by_name(name).ok_or_else(|| format!("unknown litmus test {name:?}"))?;
    let ptok = args.get("proto").ok_or("--proto is required")?;
    let proto = Protocol::EXTENDED
        .into_iter()
        .find(|p| p.label() == ptok)
        .ok_or_else(|| format!("unknown protocol {ptok:?} (want M, DS0, DS, or GCS)"))?;
    let mutation = match args.get("mutation") {
        None => None,
        Some(tok) => Some(
            MUTATIONS
                .iter()
                .find(|(n, _)| *n == tok)
                .map(|(_, m)| *m)
                .ok_or_else(|| format!("unknown mutation {tok:?}"))?,
        ),
    };
    Ok((lit, proto, mutation))
}

fn visited_mode(args: &Args) -> Result<VisitedMode, String> {
    Ok(match args.num("bitstate", 0u64)? {
        0 => VisitedMode::Exact,
        bits => VisitedMode::Bitstate { bits },
    })
}

fn print_report(mode: &str, report: &CheckReport, elapsed: Duration, extra: &str) -> ExitCode {
    let s = &report.stats;
    let verdict = match &report.verdict {
        Verdict::Verified => "verified".to_string(),
        Verdict::Violated(ce) => {
            format!(
                "violated picks={} minimized={}",
                ce.picks.len(),
                ce.minimized
            )
        }
    };
    let states_per_s = s.unique_states as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "{mode} verdict={verdict} unique={} expansions={} replays={} budget={} max_depth={} \
         states_per_s={:.0} spilled_runs={} spilled_entries={} visited_peak_bytes={} \
         fill={:.6} peak_rss={}{extra}",
        s.unique_states,
        s.expansions,
        s.replay_fires,
        s.budget_fired(),
        s.max_depth_seen,
        states_per_s,
        s.spilled_runs,
        s.spilled_entries,
        s.visited_peak_bytes,
        s.filter_fill_ratio(),
        peak_rss_bytes().unwrap_or(0),
    );
    match report.verdict {
        Verdict::Verified => ExitCode::SUCCESS,
        Verdict::Violated(_) => ExitCode::from(3),
    }
}

fn run(cmd: &str, args: &Args) -> Result<ExitCode, String> {
    let (lit, proto, mutation) = model(args)?;
    let workers = args.num("workers", 1usize)?;
    let started = Instant::now();
    match cmd {
        "explore" => {
            let cfg = CheckConfig {
                workers,
                max_depth: args.num("max-depth", 100_000)?,
                max_states: args.num("max-states", 2_000_000)?,
                por: args.get("no-por").is_none(),
                visited: visited_mode(args)?,
                spill_budget_bytes: match args.get("spill-budget") {
                    None => None,
                    Some(_) => Some(args.num("spill-budget", 0u64)?),
                },
                collect_frontier: false,
            };
            let report = check_litmus(&lit, proto, mutation, &cfg);
            Ok(print_report("explore", &report, started.elapsed(), ""))
        }
        "deepen" => {
            let cfg = DeepenConfig {
                base: CheckConfig {
                    workers,
                    por: args.get("no-por").is_none(),
                    visited: visited_mode(args)?,
                    spill_budget_bytes: match args.get("spill-budget") {
                        None => None,
                        Some(_) => Some(args.num("spill-budget", 0u64)?),
                    },
                    ..CheckConfig::default()
                },
                start_depth: args.num("start", 64)?,
                step: args.num("step", 64)?,
                max_depth: args.num("max-depth", 4096)?,
                round_states: args.num("round-states", 2_000_000)?,
                checkpoint: args.get("checkpoint").map(PathBuf::from),
                round_delay: match args.num("round-delay-ms", 0u64)? {
                    0 => None,
                    ms => Some(Duration::from_millis(ms)),
                },
            };
            let outcome = deepen_litmus(&lit, proto, mutation, &cfg).map_err(|e| e.to_string())?;
            let extra = format!(" rounds={} resumed={}", outcome.rounds, outcome.resumed);
            Ok(print_report(
                "deepen",
                &outcome.report,
                started.elapsed(),
                &extra,
            ))
        }
        "swarm" => {
            let cfg = SwarmConfig {
                probes: args.num("probes", 64)?,
                workers,
                probe_depth: args.num("probe-depth", 4_000)?,
                probe_states: args.num("probe-states", 20_000)?,
                filter_bits: args.num("bits", 1 << 22)?,
                seed: args.num("seed", 0u64)?,
            };
            let report = swarm_litmus(&lit, proto, mutation, &cfg);
            Ok(print_report("swarm", &report, started.elapsed(), ""))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dvs-check: {e}");
            return usage();
        }
    };
    match run(cmd, &args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dvs-check: {e}");
            usage()
        }
    }
}
