//! `dvs-check`: a bounded explicit-state model checker for the MESI and
//! DeNovoSync protocol implementations.
//!
//! Timed simulation — even chaos-perturbed ([`dvs_core::chaos`]) — samples
//! message interleavings; this crate *enumerates* them. The system runs in
//! oracle mode ([`dvs_core::oracle`]): protocol messages queue in
//! per-channel FIFOs and the checker picks which channel delivers next,
//! exploring every choice. Between deliveries the machine runs core-local
//! events to quiescence, so deliveries are the only branch points. The
//! driven protocol controllers are the *production* implementations,
//! unchanged — the checker exercises the same code the simulator runs.
//!
//! Checked properties, at every explored state:
//!
//! * the runtime coherence invariants (single-writer, registry/owner
//!   agreement, MSHR conservation — `check_invariants`),
//! * VM assertions and absence of deadlock,
//! * and at each cleanly-halted final state, the litmus test's
//!   sequential-consistency verdict ([`dvs_vm::litmus`]).
//!
//! The state space is reduced by canonical-fingerprint deduplication and
//! sleep-set partial-order reduction (see [`explore`]), explored in
//! parallel by a configurable number of worker threads, and any violation
//! is reported as a deterministic, shortest delivery schedule that the full
//! simulator can replay via [`dvs_core::oracle::SchedulePlan`].
//!
//! # Example
//!
//! Verify store-buffering under MESI, then confirm a seeded protocol bug
//! (a skipped invalidation, observable under lock contention) is caught:
//!
//! ```
//! use dvs_check::{check_litmus, CheckConfig, Verdict};
//! use dvs_core::{Protocol, ProtocolMutation};
//! use dvs_vm::litmus;
//!
//! let cfg = CheckConfig::default();
//! let ok = check_litmus(&litmus::sb(), Protocol::Mesi, None, &cfg);
//! assert_eq!(ok.verdict, Verdict::Verified);
//! assert!(ok.stats.complete());
//!
//! let buggy = check_litmus(
//!     &litmus::tatas(),
//!     Protocol::Mesi,
//!     Some(ProtocolMutation::MesiSkipInvalidate),
//!     &cfg,
//! );
//! assert!(matches!(buggy.verdict, Verdict::Violated(_)));
//! ```

pub mod checkpoint;
pub mod explore;
pub mod swarm;
pub mod visited;

pub use checkpoint::{deepen, Checkpoint, DeepenConfig, DeepenOutcome};
pub use explore::{
    explore, explore_seeds, failure_of, finish, minimize, CheckConfig, CheckReport, CheckStats,
    Counterexample, Failure, FinalCheck, RawExploration, Seed, Verdict,
};
pub use swarm::{swarm_litmus, SwarmConfig};
pub use visited::{BitstateFilter, VisitedMode};

use dvs_core::config::{MeshShape, Protocol, ProtocolMutation, SystemConfig};
use dvs_core::oracle::SchedulePlan;
use dvs_core::system::System;
use dvs_vm::litmus::Litmus;

/// The system configuration the checker drives: the standard small test
/// config with runtime invariant checking forced on, plus an optional
/// seeded protocol mutation for negative testing.
pub fn checker_config(
    cores: usize,
    protocol: Protocol,
    mutation: Option<ProtocolMutation>,
) -> SystemConfig {
    let mut cfg = SystemConfig::small(cores, protocol);
    cfg.check_invariants = true;
    cfg.mutation = mutation;
    cfg
}

/// Builds the oracle-mode root state for a litmus test.
///
/// The litmus threads run on a machine of at least 4 cores, with any spare
/// cores given a trivial program that halts immediately — they quiesce
/// during the initial drain and add no interleavings. Square core counts
/// keep the default square mesh (preserving historical fingerprints);
/// non-square counts (the `tatas_n` scaling shapes: 8 threads → 2×4) get
/// an explicit near-square [`MeshShape`].
pub fn litmus_root(lit: &Litmus, protocol: Protocol, mutation: Option<ProtocolMutation>) -> System {
    let cores = lit.nthreads().max(4);
    let mut programs = lit.programs.clone();
    while programs.len() < cores {
        let mut a = dvs_vm::Asm::new("idle");
        a.halt();
        programs.push(a.build());
    }
    let mut cfg = checker_config(cores, protocol, mutation);
    let side = (cores as f64).sqrt() as usize;
    if side * side != cores {
        let rows = (1..=side)
            .rev()
            .find(|&r| cores.is_multiple_of(r))
            .unwrap_or(1);
        let shape = MeshShape::new(rows as u32, (cores / rows) as u32)
            .expect("near-square factorization is a valid mesh");
        cfg.mesh = Some(shape);
    }
    System::new_oracle(cfg, lit.layout.clone(), programs)
}

/// Model-checks one litmus test under one protocol: explores all delivery
/// interleavings within `cfg`'s bounds, checking the runtime coherence
/// invariants at every delivery and the litmus SC verdict at every
/// cleanly-halted final state.
pub fn check_litmus(
    lit: &Litmus,
    protocol: Protocol,
    mutation: Option<ProtocolMutation>,
    cfg: &CheckConfig,
) -> CheckReport {
    let root = litmus_root(lit, protocol, mutation);
    let final_ok = |sys: &System| litmus_final_ok(lit, sys);
    explore(&root, &final_ok, cfg)
}

/// Iteratively deepens one litmus test under one protocol, resuming from
/// `cfg`'s checkpoint file if it exists — the deepening counterpart of
/// [`check_litmus`]. Returns `Err` (exploring nothing) if an existing
/// checkpoint is corrupt or belongs to a different model.
pub fn deepen_litmus(
    lit: &Litmus,
    protocol: Protocol,
    mutation: Option<ProtocolMutation>,
    cfg: &DeepenConfig,
) -> Result<DeepenOutcome, checkpoint::CheckpointError> {
    let root = litmus_root(lit, protocol, mutation);
    let final_ok = |sys: &System| litmus_final_ok(lit, sys);
    deepen(&root, &final_ok, cfg)
}

/// The litmus verdict as an explorer predicate, with one canonical failure
/// message — `check_litmus` and `replay_litmus` must produce byte-identical
/// [`Failure::FinalState`] values or replay verification reports spurious
/// divergence.
pub(crate) fn litmus_final_ok(lit: &Litmus, sys: &System) -> Result<(), String> {
    lit.check(|a| sys.read_word(a)).map_err(|vals| {
        let vals: Vec<String> = vals.iter().map(|(n, v)| format!("{n}={v}")).collect();
        format!("{} (observed {})", lit.property, vals.join(", "))
    })
}

/// Replays a counterexample from [`check_litmus`] on a fresh system and
/// classifies what the replayed machine shows: the recorded error, the
/// deadlock report, or the violating final state. Returns `Err` with a
/// description if the replay does *not* reproduce the counterexample's
/// failure — which would indicate checker/simulator divergence.
pub fn replay_litmus(
    lit: &Litmus,
    protocol: Protocol,
    mutation: Option<ProtocolMutation>,
    ce: &Counterexample,
) -> Result<Failure, String> {
    let plan = SchedulePlan::new(ce.picks.clone());
    let sys = plan.replay(litmus_root(lit, protocol, mutation));
    let final_ok = |s: &System| litmus_final_ok(lit, s);
    match failure_of(&sys, &final_ok) {
        Some(f) => Ok(f),
        None => Err(format!(
            "replay of {} picks reached a healthy state (delivered {} messages)",
            ce.picks.len(),
            plan.len()
        )),
    }
}
