//! The tiered, budget-aware visited-set layer.
//!
//! The explorer deduplicates states by 64-bit canonical fingerprint. What is
//! stored *per fingerprint* decides how far a run can scale, so the visited
//! set is built as tiers:
//!
//! * **Exact tier** ([`VisitedMode::Exact`]): a sharded fingerprint map.
//!   The only per-state payload is the subset-prune entry the sleep-set
//!   reduction needs — the sleep set the state was last expanded with and
//!   the minimal depth it was reached at — packed densely: channels are
//!   interned to `u16` ids and sleep sets live in one contiguous per-shard
//!   arena, so an entry costs ~20 bytes plus 2 bytes per slept channel
//!   instead of a `Vec<ChannelKey>` heap allocation each.
//! * **Spill tier** (exact mode + [`CheckConfig::spill_budget_bytes`]): when
//!   the in-memory estimate crosses the budget, whole shards freeze their
//!   hot maps into sorted runs on disk (a temp directory removed on drop).
//!   Lookups consult the hot map first, then binary-search the frozen runs;
//!   an entry that needs weakening is re-inserted into the hot map, which
//!   shadows the disk copy. Spilling changes *where* entries live, never
//!   which states are explored — exact results are byte-identical with and
//!   without a budget.
//! * **Bitstate tier** ([`VisitedMode::Bitstate`]): a double-hashed k-probe
//!   Bloom filter over a caller-sized bit array ([`BitstateFilter`]). No
//!   per-state payload at all — 1–2 *bits* per state at sensible fills — so
//!   state counts two to three orders of magnitude beyond the exact tier
//!   fit in the same memory. Lossy in one direction only: a filter
//!   collision prunes a genuinely-new state (under-exploration), it can
//!   never resurrect or fabricate one, so `Verified` weakens to "no
//!   violation in the explored subset" while `Violated` stays exact (every
//!   counterexample is still a concrete replayable schedule).
//!
//! [`CheckConfig::spill_budget_bytes`]: crate::CheckConfig

use dvs_core::oracle::ChannelKey;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// Which visited tier the explorer deduplicates through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VisitedMode {
    /// The exact fingerprint map: sound up to 64-bit hash collisions, full
    /// sleep-set subset-prune semantics, deterministic state set.
    #[default]
    Exact,
    /// A lossy Bloom/bitstate filter of `bits` bits. Scales to state counts
    /// the exact map cannot hold; may under-explore (a filter collision
    /// prunes a new state, and a revisit is never re-expanded with a weaker
    /// sleep set), never over-reports: a `Violated` verdict still carries a
    /// concrete schedule.
    Bitstate {
        /// Size of the bit array; rounded up to a multiple of 64, minimum
        /// 64. Collision probability at `n` inserted states is roughly
        /// `fill^k` per query (see [`BitstateFilter::collision_probability`]).
        bits: u64,
    },
}

/// Number of double-hashed probes per fingerprint in bitstate mode. Three
/// probes keep the per-query collision probability near `fill³` while
/// costing three cache lines at most per admit.
pub const BITSTATE_PROBES: u32 = 3;

/// A double-hashed k-probe Bloom filter over `u64` fingerprints, shared
/// lock-free between workers.
///
/// Membership is deterministic in the *set* of inserted fingerprints: the
/// final bit array is the OR of each fingerprint's probe mask, so any
/// insertion order — and any worker count — produces identical bits.
///
/// # Examples
///
/// ```
/// use dvs_check::BitstateFilter;
///
/// let f = BitstateFilter::new(1 << 16);
/// assert!(f.insert(42)); // new
/// assert!(!f.insert(42)); // seen
/// assert!(f.contains(42));
/// assert!(f.fill_ratio() > 0.0);
/// ```
#[derive(Debug)]
pub struct BitstateFilter {
    words: Box<[AtomicU64]>,
    bits: u64,
    /// Total `insert` calls.
    inserts: AtomicU64,
    /// Inserts that found at least one clear probe bit (distinct-state
    /// estimate; exact absent filter collisions and insert races).
    new_inserts: AtomicU64,
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BitstateFilter {
    /// A filter of (at least) `bits` bits, all clear. `bits` is rounded up
    /// to a multiple of 64, minimum 64.
    pub fn new(bits: u64) -> Self {
        let words = bits.div_ceil(64).max(1) as usize;
        BitstateFilter {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            bits: words as u64 * 64,
            inserts: AtomicU64::new(0),
            new_inserts: AtomicU64::new(0),
        }
    }

    /// The probe bit positions for a fingerprint: classic double hashing
    /// `h1 + i·h2` with `h2` forced odd so every probe stream eventually
    /// touches every bit.
    fn probes(&self, fp: u64) -> [u64; BITSTATE_PROBES as usize] {
        let h1 = mix64(fp);
        let h2 = mix64(fp ^ 0x9E37_79B9_7F4A_7C15) | 1;
        let mut out = [0u64; BITSTATE_PROBES as usize];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.bits;
        }
        out
    }

    /// Inserts a fingerprint; returns whether any probe bit was previously
    /// clear (i.e. the fingerprint is new to the filter, modulo collisions).
    pub fn insert(&self, fp: u64) -> bool {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut fresh = false;
        for bit in self.probes(fp) {
            let mask = 1u64 << (bit % 64);
            let prev = self.words[(bit / 64) as usize].fetch_or(mask, Ordering::Relaxed);
            fresh |= prev & mask == 0;
        }
        if fresh {
            self.new_inserts.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Whether all probe bits for `fp` are set (no false negatives: an
    /// inserted fingerprint always answers `true`).
    pub fn contains(&self, fp: u64) -> bool {
        self.probes(fp).iter().all(|&bit| {
            self.words[(bit / 64) as usize].load(Ordering::Relaxed) & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the bit array.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Ground-truth number of set bits (full popcount scan).
    pub fn bits_set(&self) -> u64 {
        self.words
            .iter()
            .map(|w| u64::from(w.load(Ordering::Relaxed).count_ones()))
            .sum()
    }

    /// Ground-truth fill ratio: set bits over total bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits_set() as f64 / self.bits as f64
    }

    /// The fill ratio the classic Bloom model predicts from the insert
    /// count alone: `1 - (1 - 1/m)^(k·n)`. Property tests hold this within
    /// tolerance of [`BitstateFilter::fill_ratio`].
    pub fn predicted_fill_ratio(&self) -> f64 {
        let n = self.new_inserts.load(Ordering::Relaxed) as f64;
        let m = self.bits as f64;
        1.0 - (1.0 - 1.0 / m).powf(BITSTATE_PROBES as f64 * n)
    }

    /// Estimated probability that a query for a *new* fingerprint answers
    /// "seen" (all probes collide): `fill^k` at the current fill ratio.
    pub fn collision_probability(&self) -> f64 {
        self.fill_ratio().powi(BITSTATE_PROBES as i32)
    }

    /// Distinct-fingerprint estimate: inserts that found a clear bit.
    pub fn unique_inserts(&self) -> u64 {
        self.new_inserts.load(Ordering::Relaxed)
    }

    /// Snapshot of the raw bit words (for determinism tests).
    pub fn snapshot(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }
}

/// Visited-set shard count; fingerprints spread across shards to keep lock
/// contention off the hot path and to give the spill tier a freeze
/// granularity.
pub(crate) const SHARDS: usize = 64;

/// Approximate in-memory bytes of one hot-map entry (key + packed entry +
/// `HashMap` overhead), used by the spill budget accounting.
const ENTRY_COST: usize = 48;

/// A packed visited entry: minimal depth plus the stored sleep set as an
/// (offset, length) slice of the shard's id arena.
#[derive(Clone, Copy)]
struct Packed {
    depth: u32,
    off: u32,
    len: u16,
}

/// One sorted frozen run of a spilled shard: `count` fixed-size records
/// (fingerprint, depth, sleep offset, sleep length) followed by a blob of
/// `u16` channel ids. Records are binary-searched by seeking; a run is
/// written once and never modified.
struct Run {
    file: File,
    count: u64,
}

/// Byte layout of one frozen record.
const REC_SIZE: u64 = 8 + 4 + 4 + 2 + 2;

impl Run {
    fn record(&mut self, idx: u64) -> std::io::Result<(u64, u32, u32, u16)> {
        let mut buf = [0u8; REC_SIZE as usize];
        self.file.seek(SeekFrom::Start(8 + idx * REC_SIZE))?;
        self.file.read_exact(&mut buf)?;
        Ok((
            u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            u16::from_le_bytes(buf[16..18].try_into().unwrap()),
        ))
    }

    /// Binary search for `fp`; returns its (depth, sleep ids) when present.
    fn get(&mut self, fp: u64) -> Option<(u32, Vec<u16>)> {
        let (mut lo, mut hi) = (0u64, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (rec_fp, depth, off, len) = self.record(mid).ok()?;
            match rec_fp.cmp(&fp) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let blob_base = 8 + self.count * REC_SIZE;
                    let mut buf = vec![0u8; len as usize * 2];
                    self.file
                        .seek(SeekFrom::Start(blob_base + off as u64 * 2))
                        .ok()?;
                    self.file.read_exact(&mut buf).ok()?;
                    let ids = buf
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                        .collect();
                    return Some((depth, ids));
                }
            }
        }
        None
    }
}

/// One exact-tier shard: the hot map, its sleep-id arena, and any frozen
/// runs already spilled to disk.
#[derive(Default)]
struct Shard {
    hot: HashMap<u64, Packed>,
    arena: Vec<u16>,
    runs: Vec<Run>,
    /// Distinct fingerprints first seen by this shard (hot + spilled).
    inserted: u64,
}

impl Shard {
    fn hot_bytes(&self) -> usize {
        self.hot.len() * ENTRY_COST + self.arena.len() * 2
    }

    fn sleep(&self, p: &Packed) -> &[u16] {
        &self.arena[p.off as usize..p.off as usize + p.len as usize]
    }
}

/// Interns [`ChannelKey`]s to dense `u16` ids so stored sleep sets cost two
/// bytes per channel. A system exposes at most a few hundred channels, so
/// `u16` never overflows in practice (guarded by an assert).
#[derive(Default)]
struct Interner {
    ids: HashMap<ChannelKey, u16>,
    keys: Vec<ChannelKey>,
}

/// Spill-tier bookkeeping shared across shards.
struct Spill {
    dir: PathBuf,
    budget: usize,
    seq: AtomicU64,
    frozen_runs: AtomicU64,
    frozen_entries: AtomicU64,
}

/// The exact tier: sharded packed fingerprint map with optional disk spill.
pub(crate) struct ExactStore {
    shards: Vec<Mutex<Shard>>,
    interner: RwLock<Interner>,
    /// Approximate bytes held by all hot maps (spill accounting).
    hot_bytes: AtomicUsize,
    /// High-water mark of `hot_bytes` — what the spill budget actually
    /// bounds; reported in [`CheckStats`](crate::CheckStats).
    peak_hot_bytes: AtomicUsize,
    spill: Option<Spill>,
}

impl ExactStore {
    pub(crate) fn new(spill_budget: Option<u64>) -> Self {
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let spill = spill_budget.map(|budget| {
            let dir = std::env::temp_dir().join(format!(
                "dvs-check-spill-{}-{}",
                std::process::id(),
                STORE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("creating spill dir");
            Spill {
                dir,
                budget: budget as usize,
                seq: AtomicU64::new(0),
                frozen_runs: AtomicU64::new(0),
                frozen_entries: AtomicU64::new(0),
            }
        });
        ExactStore {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            interner: RwLock::new(Interner::default()),
            hot_bytes: AtomicUsize::new(0),
            peak_hot_bytes: AtomicUsize::new(0),
            spill,
        }
    }

    fn intern(&self, keys: &[ChannelKey]) -> Vec<u16> {
        {
            let g = self.interner.read().unwrap();
            if let Some(ids) = keys.iter().map(|k| g.ids.get(k).copied()).collect() {
                return ids;
            }
        }
        let mut g = self.interner.write().unwrap();
        keys.iter()
            .map(|k| match g.ids.get(k) {
                Some(&id) => id,
                None => {
                    let id = u16::try_from(g.keys.len()).expect("more than 65536 channels");
                    g.ids.insert(*k, id);
                    g.keys.push(*k);
                    id
                }
            })
            .collect()
    }

    fn resolve(&self, ids: &[u16]) -> Vec<ChannelKey> {
        let g = self.interner.read().unwrap();
        ids.iter().map(|&id| g.keys[id as usize]).collect()
    }

    /// The subset-prune gate (see the `explore` module docs): prune when the
    /// stored sleep set is a subset of the incoming one and the stored depth
    /// is not deeper; otherwise weaken the entry to the intersection and
    /// minimum depth and return the sleep set to expand with.
    pub(crate) fn admit(
        &self,
        fp: u64,
        sleep: &[ChannelKey],
        depth: usize,
    ) -> Option<Vec<ChannelKey>> {
        let ids = self.intern(sleep);
        let shard = &self.shards[(fp % SHARDS as u64) as usize];
        let mut s = shard.lock().unwrap();
        if let Some(p) = s.hot.get(&fp).copied() {
            let stored = s.sleep(&p);
            let subset = stored.iter().all(|id| ids.contains(id));
            if subset && p.depth as usize <= depth {
                return None;
            }
            // Weaken in place: the intersection is a subsequence of the
            // stored slice, so it always fits in the same arena span.
            let merged: Vec<u16> = stored
                .iter()
                .filter(|id| ids.contains(id))
                .copied()
                .collect();
            let off = p.off as usize;
            s.arena[off..off + merged.len()].copy_from_slice(&merged);
            let entry = s.hot.get_mut(&fp).unwrap();
            entry.len = merged.len() as u16;
            entry.depth = entry.depth.min(depth as u32);
            return Some(self.resolve(&merged));
        }
        // Cold path: consult frozen runs, newest first (the newest copy is
        // the most weakened one).
        let frozen = s.runs.iter_mut().rev().find_map(|r| r.get(fp));
        if let Some((run_depth, stored)) = frozen {
            let subset = stored.iter().all(|id| ids.contains(id));
            if subset && run_depth as usize <= depth {
                return None;
            }
            let merged: Vec<u16> = stored.into_iter().filter(|id| ids.contains(id)).collect();
            let resolved = self.resolve(&merged);
            self.insert_hot(&mut s, fp, run_depth.min(depth as u32), merged);
            return Some(resolved);
        }
        // Genuinely new state.
        s.inserted += 1;
        self.insert_hot(&mut s, fp, depth as u32, ids);
        Some(sleep.to_vec())
    }

    fn insert_hot(&self, s: &mut Shard, fp: u64, depth: u32, ids: Vec<u16>) {
        let off = u32::try_from(s.arena.len()).expect("shard arena overflow");
        let len = ids.len() as u16;
        s.arena.extend_from_slice(&ids);
        s.hot.insert(fp, Packed { depth, off, len });
        let grown = ENTRY_COST + ids.len() * 2;
        let total = self.hot_bytes.fetch_add(grown, Ordering::Relaxed) + grown;
        self.peak_hot_bytes.fetch_max(total, Ordering::Relaxed);
        if let Some(spill) = &self.spill {
            // Freeze this shard once the global hot estimate crosses the
            // budget and the shard is big enough to be worth a run. Other
            // shards freeze when their own inserts observe the overrun.
            if total > spill.budget && s.hot_bytes() >= spill.budget / SHARDS / 2 {
                self.freeze(s, spill);
            }
        }
    }

    /// Writes a shard's hot map as one sorted run and clears it.
    fn freeze(&self, s: &mut Shard, spill: &Spill) {
        if s.hot.is_empty() {
            return;
        }
        let released = s.hot_bytes();
        let mut entries: Vec<(u64, Packed)> = s.hot.drain().collect();
        entries.sort_unstable_by_key(|&(fp, _)| fp);
        let path = spill.dir.join(format!(
            "run-{}.dvsv",
            spill.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut records = Vec::with_capacity(entries.len() * REC_SIZE as usize);
        let mut blob: Vec<u8> = Vec::new();
        for (fp, p) in &entries {
            let off = (blob.len() / 2) as u32;
            for id in &s.arena[p.off as usize..p.off as usize + p.len as usize] {
                blob.extend_from_slice(&id.to_le_bytes());
            }
            records.extend_from_slice(&fp.to_le_bytes());
            records.extend_from_slice(&p.depth.to_le_bytes());
            records.extend_from_slice(&off.to_le_bytes());
            records.extend_from_slice(&p.len.to_le_bytes());
            records.extend_from_slice(&[0, 0]);
        }
        let mut file = File::options()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .expect("creating spill run");
        file.write_all(&(entries.len() as u64).to_le_bytes())
            .and_then(|()| file.write_all(&records))
            .and_then(|()| file.write_all(&blob))
            .expect("writing spill run");
        s.arena.clear();
        s.runs.push(Run {
            file,
            count: entries.len() as u64,
        });
        spill.frozen_runs.fetch_add(1, Ordering::Relaxed);
        spill
            .frozen_entries
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        self.hot_bytes.fetch_sub(released, Ordering::Relaxed);
    }

    /// Distinct fingerprints ever admitted.
    pub(crate) fn unique_states(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().inserted).sum()
    }

    /// The final stored depth of a fingerprint (hot map first, then runs) —
    /// the deterministic quantity frontier filtering keys on.
    pub(crate) fn stored_depth(&self, fp: u64) -> Option<usize> {
        let mut s = self.shards[(fp % SHARDS as u64) as usize].lock().unwrap();
        if let Some(p) = s.hot.get(&fp) {
            return Some(p.depth as usize);
        }
        s.runs
            .iter_mut()
            .rev()
            .find_map(|r| r.get(fp))
            .map(|(depth, _)| depth as usize)
    }

    /// (runs, entries) frozen to disk so far.
    pub(crate) fn spill_counters(&self) -> (u64, u64) {
        match &self.spill {
            None => (0, 0),
            Some(sp) => (
                sp.frozen_runs.load(Ordering::Relaxed),
                sp.frozen_entries.load(Ordering::Relaxed),
            ),
        }
    }

    /// High-water mark of the in-memory hot-map estimate — the quantity the
    /// spill budget bounds.
    pub(crate) fn peak_hot_bytes(&self) -> u64 {
        self.peak_hot_bytes.load(Ordering::Relaxed) as u64
    }
}

impl Drop for ExactStore {
    fn drop(&mut self) {
        if let Some(spill) = &self.spill {
            let _ = std::fs::remove_dir_all(&spill.dir);
        }
    }
}

/// The visited set behind one exploration run: the exact tier or the
/// bitstate tier, behind one `admit` gate.
pub(crate) enum Visited {
    Exact(ExactStore),
    Bitstate(BitstateFilter),
}

impl Visited {
    pub(crate) fn new(mode: VisitedMode, spill_budget: Option<u64>) -> Self {
        match mode {
            VisitedMode::Exact => Visited::Exact(ExactStore::new(spill_budget)),
            VisitedMode::Bitstate { bits } => Visited::Bitstate(BitstateFilter::new(bits)),
        }
    }

    /// Gate for a node about to be expanded: the sleep set to expand with,
    /// or `None` to prune. Bitstate admits a fingerprint exactly once (no
    /// subset-prune weakening — a revisit with a weaker sleep set is pruned,
    /// which can only under-explore).
    pub(crate) fn admit(
        &self,
        fp: u64,
        sleep: &[ChannelKey],
        depth: usize,
    ) -> Option<Vec<ChannelKey>> {
        match self {
            Visited::Exact(store) => store.admit(fp, sleep, depth),
            Visited::Bitstate(filter) => filter.insert(fp).then(|| sleep.to_vec()),
        }
    }

    pub(crate) fn unique_states(&self) -> u64 {
        match self {
            Visited::Exact(store) => store.unique_states(),
            Visited::Bitstate(filter) => filter.unique_inserts(),
        }
    }

    /// Whether a depth-truncated node is genuinely frontier material: its
    /// final stored depth equals the depth bound (it was never re-reached
    /// and expanded shallower). Bitstate stores no depths, so every
    /// truncated node is kept.
    pub(crate) fn at_frontier(&self, fp: u64, bound: usize) -> bool {
        match self {
            Visited::Exact(store) => store.stored_depth(fp) == Some(bound),
            Visited::Bitstate(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_core::msg::Endpoint;

    fn key(i: usize) -> ChannelKey {
        ChannelKey::Net(i, Endpoint::L1(i))
    }

    #[test]
    fn exact_store_subset_prunes_and_weakens() {
        let store = ExactStore::new(None);
        // First admission stores the sleep set unchanged.
        let got = store.admit(7, &[key(0), key(1)], 3).expect("new state");
        assert_eq!(got, vec![key(0), key(1)]);
        assert_eq!(store.unique_states(), 1);
        // Superset + deeper revisit prunes.
        assert!(store.admit(7, &[key(0), key(1), key(2)], 5).is_none());
        // Disjoint sleep set weakens to the intersection and re-admits.
        let got = store.admit(7, &[key(1), key(2)], 4).expect("weakened");
        assert_eq!(got, vec![key(1)]);
        // Now {key(1)} is stored; a shallower visit re-admits on depth.
        let got = store.admit(7, &[key(1)], 1).expect("shallower");
        assert_eq!(got, vec![key(1)]);
        assert_eq!(store.stored_depth(7), Some(1));
        assert_eq!(store.unique_states(), 1, "same fingerprint throughout");
    }

    #[test]
    fn spilled_entries_stay_consultable_and_exact() {
        // A budget of zero freezes a shard on (nearly) every insert, so
        // every lookup exercises the frozen-run binary search.
        let store = ExactStore::new(Some(0));
        let n = 4000u64;
        for i in 0..n {
            assert!(store.admit(i, &[key(0)], 2).is_some(), "fp {i} is new");
        }
        let (runs, entries) = store.spill_counters();
        assert!(runs > 0, "nothing froze");
        assert!(entries > 0);
        // Every fingerprint deduplicates, whether hot or frozen.
        for i in 0..n {
            assert!(
                store.admit(i, &[key(0), key(1)], 9).is_none(),
                "fp {i} lost by the spill tier"
            );
        }
        assert_eq!(store.unique_states(), n);
        // Weakening a frozen entry pulls it back into the hot tier.
        let got = store.admit(17, &[key(1)], 9).expect("weakened from disk");
        assert_eq!(got, Vec::<ChannelKey>::new());
        assert_eq!(store.stored_depth(17), Some(2));
    }

    #[test]
    fn bitstate_filter_has_no_false_negatives_smoke() {
        let f = BitstateFilter::new(1 << 12);
        for fp in 0..200u64 {
            f.insert(mix64(fp));
        }
        for fp in 0..200u64 {
            assert!(f.contains(mix64(fp)));
        }
        assert!(f.unique_inserts() <= 200);
        assert!(f.fill_ratio() > 0.0 && f.fill_ratio() < 1.0);
    }
}
