//! The parallel sleep-set explorer.
//!
//! Explores every message-delivery interleaving of a [`StepOracle`] machine
//! from its initial state, up to configurable depth/state budgets, checking
//! for recorded protocol errors, deadlocks, and final-state property
//! violations.
//!
//! # State space
//!
//! A *state* is a quiesced machine: every core-local event has run, so the
//! only enabled transitions are channel deliveries ([`StepOracle::enabled`]).
//! Two states are identified iff their canonical fingerprints
//! ([`StepOracle::fingerprint`]) match — a 64-bit hash, so the visited set
//! is sound up to hash collisions (≈ `n²/2⁶⁴` for `n` states; ~10⁻⁷ even at
//! the 10⁶-state spaces the deep modes target, and any collision only
//! *under*-explores, it cannot fabricate a violation).
//!
//! # Partial-order reduction
//!
//! Classic sleep sets (Godefroid) over the delivery-dependence relation
//! [`ChannelKey::depends`]: deliveries to distinct endpoints commute (each
//! mutates only its destination controller; memory controllers are mutually
//! dependent through the shared memory image), so of the `k!` orders of `k`
//! pairwise-independent deliveries only one is explored. Sleep sets compose
//! with the visited set via the *subset-prune* rule: the visited entry for a
//! fingerprint stores the sleep set (and depth) it was last expanded with,
//! and a revisit is pruned only if its sleep set is a superset (nothing new
//! would be explored) **and** it is not shallower (nothing new fits in the
//! depth budget). Otherwise the entry is weakened to the intersection /
//! minimum and the state re-expanded. Expansion is therefore monotone and
//! converges to a least fixpoint, making the final visited *set*
//! deterministic across runs and worker counts even though scheduling
//! racing makes the expansion *count* vary. (In
//! [`VisitedMode::Bitstate`] the store keeps no per-state entry, so a
//! revisit is pruned unconditionally — sound but possibly under-exploring;
//! see the `visited` module.)
//!
//! # Paths
//!
//! Each node remembers how it was reached as a persistent
//! parent-pointer chain ([`PathLink`]), so extending a path costs one small
//! allocation and an `Arc` bump instead of cloning a `Vec` per child — at
//! depth *d* that turns O(d²) bytes of path copying per branch into O(d).
//! Paths are materialized to `Vec<ChannelKey>` only when reported (a
//! violation or a frontier entry).
//!
//! # Parallelism and memory
//!
//! Plain OS threads over a shared injector deque. Each worker pops one
//! work item (a live node or a seed prefix replayed on pickup), then runs
//! depth-first over an explicit frame stack, deriving children on demand;
//! when the deque starves, pending picks are peeled off the *shallowest*
//! frames — the biggest unexplored subtrees — and donated. Termination is
//! the classic "queue empty and no worker active" condition under one
//! mutex.
//!
//! Worker memory is bounded even on models whose state chains run to the
//! depth bound: machine residency on the frame stack is windowed (top
//! frames plus periodic milestones, see [`Frame`]), evicted frames are
//! rebuilt by replaying their own picks from the nearest resident
//! ancestor, and the visited set can spill to disk under a byte budget
//! ([`CheckConfig::spill_budget_bytes`]).

use crate::visited::{Visited, VisitedMode};
use dvs_core::oracle::{ChannelKey, StepOracle};
use dvs_core::system::SimError;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Exploration budgets and strategy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Worker threads. 1 = sequential.
    pub workers: usize,
    /// Maximum deliveries along any one path. Paths that reach the bound
    /// without terminating mark the run depth-truncated. The default is
    /// high enough that the visited set, not the depth, bounds exploration.
    pub max_depth: usize,
    /// Maximum node expansions (including sleep-set re-expansions) before
    /// the run gives up and marks itself state-truncated.
    pub max_states: u64,
    /// Enable sleep-set partial-order reduction. Disabling explores the
    /// full interleaving tree (modulo the visited set) — used to measure
    /// the reduction factor and by soundness cross-checks.
    pub por: bool,
    /// Which visited tier deduplicates states (exact map or lossy bitstate
    /// filter).
    pub visited: VisitedMode,
    /// Peak in-memory budget for the exact visited tier, in bytes. When the
    /// hot-map estimate crosses it, cold shards spill to sorted runs in a
    /// temp directory (removed when the run ends). `None` keeps everything
    /// in memory; ignored in bitstate mode.
    pub spill_budget_bytes: Option<u64>,
    /// Collect the frontier — the schedule prefixes of every node truncated
    /// at `max_depth` — into the report, for checkpointing and iterative
    /// deepening. Off by default: frontier paths cost memory.
    pub collect_frontier: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            workers: 1,
            max_depth: 100_000,
            max_states: 2_000_000,
            por: true,
            visited: VisitedMode::Exact,
            spill_budget_bytes: None,
            collect_frontier: false,
        }
    }
}

/// Counters describing one exploration run.
///
/// `unique_states` is deterministic for a given model and config in exact
/// mode (see the module docs); the other counters depend on scheduling and
/// are reported for diagnostics and benchmarking only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct canonical fingerprints visited. In bitstate mode this is
    /// the count of inserts that found a clear filter bit — an estimate: a
    /// filter collision can only lower it, a concurrent-insert race can
    /// only raise it (exact at one worker modulo collisions). Neither
    /// affects soundness, only the reported coverage.
    pub unique_states: u64,
    /// Node expansions, including sleep-set/depth re-expansions.
    pub expansions: u64,
    /// Deliveries actually performed (edges walked).
    pub transitions_fired: u64,
    /// Sum of enabled-transition counts over all expansions — what a
    /// reduction-free explorer would have fired from the same states.
    pub transitions_enabled: u64,
    /// Transitions skipped because they were in the sleep set.
    pub sleep_skips: u64,
    /// Revisits pruned by the visited set.
    pub dedup_hits: u64,
    /// Deliveries re-fired to rebuild machine state — replaying a seed
    /// prefix on pickup or repaging an evicted stack frame. Paging
    /// overhead, not new edges: excluded from `transitions_fired`.
    pub replay_fires: u64,
    /// Deepest path expanded.
    pub max_depth_seen: usize,
    /// Some path hit [`CheckConfig::max_depth`]; "no violation" is only a
    /// bounded claim. The truncated prefixes are the frontier.
    pub depth_truncated: bool,
    /// The expansion budget [`CheckConfig::max_states`] ran out; "no
    /// violation" is only a bounded claim.
    pub state_truncated: bool,
    /// Bitstate tier: size of the filter's bit array (0 in exact mode).
    pub filter_bits: u64,
    /// Bitstate tier: ground-truth set bits at the end of the run.
    pub filter_bits_set: u64,
    /// Exact tier: frozen runs the spill tier wrote.
    pub spilled_runs: u64,
    /// Exact tier: entries frozen to disk (an entry re-weakened after
    /// spilling counts again).
    pub spilled_entries: u64,
    /// Exact tier: high-water mark of the in-memory hot-map estimate — the
    /// quantity [`CheckConfig::spill_budget_bytes`] bounds.
    pub visited_peak_bytes: u64,
}

impl CheckStats {
    /// Whether every within-budget state was fully expanded: neither the
    /// depth nor the state budget fired. (A run stopped early by a found
    /// violation reports whatever budgets fired before the stop.)
    pub fn complete(&self) -> bool {
        !self.depth_truncated && !self.state_truncated
    }

    /// Which budget fired, as a stable label for artifacts and journals:
    /// `"none"`, `"depth"`, `"states"`, or `"depth+states"`.
    pub fn budget_fired(&self) -> &'static str {
        match (self.depth_truncated, self.state_truncated) {
            (false, false) => "none",
            (true, false) => "depth",
            (false, true) => "states",
            (true, true) => "depth+states",
        }
    }

    /// Bitstate fill ratio (set bits over total bits); 0 in exact mode.
    pub fn filter_fill_ratio(&self) -> f64 {
        if self.filter_bits == 0 {
            0.0
        } else {
            self.filter_bits_set as f64 / self.filter_bits as f64
        }
    }

    /// Estimated probability that a bitstate query for a new state answered
    /// "seen" (`fill^k`); 0 in exact mode.
    pub fn filter_collision_probability(&self) -> f64 {
        self.filter_fill_ratio()
            .powi(crate::visited::BITSTATE_PROBES as i32)
    }

    /// Folds another run's counters into this one (used by the deepening
    /// driver and the swarm harness). Budget flags OR; unique states add —
    /// callers that re-explore overlapping regions document what the sum
    /// means for them.
    pub fn absorb(&mut self, other: &CheckStats) {
        self.unique_states += other.unique_states;
        self.expansions += other.expansions;
        self.transitions_fired += other.transitions_fired;
        self.transitions_enabled += other.transitions_enabled;
        self.sleep_skips += other.sleep_skips;
        self.dedup_hits += other.dedup_hits;
        self.replay_fires += other.replay_fires;
        self.max_depth_seen = self.max_depth_seen.max(other.max_depth_seen);
        self.depth_truncated |= other.depth_truncated;
        self.state_truncated |= other.state_truncated;
        self.filter_bits = self.filter_bits.max(other.filter_bits);
        self.filter_bits_set = self.filter_bits_set.max(other.filter_bits_set);
        self.spilled_runs += other.spilled_runs;
        self.spilled_entries += other.spilled_entries;
        self.visited_peak_bytes = self.visited_peak_bytes.max(other.visited_peak_bytes);
    }
}

/// What went wrong in a violating execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The machine recorded an error: a runtime coherence-invariant
    /// violation, a VM assertion, or a deadlock (empty channels with
    /// threads still running).
    Sim(SimError),
    /// All threads halted cleanly but the final memory state violated the
    /// model's property (e.g. a litmus test's SC verdict).
    FinalState(String),
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Sim(e) => write!(f, "{e}"),
            Failure::FinalState(msg) => write!(f, "final state violates property: {msg}"),
        }
    }
}

/// A violating execution: the delivery schedule from the initial state and
/// the failure it ends in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The channel picked at each delivery, in order. Feed to
    /// [`SchedulePlan`](dvs_core::oracle::SchedulePlan) for replay on the
    /// real system.
    pub picks: Vec<ChannelKey>,
    /// How the execution fails after the last pick.
    pub failure: Failure,
    /// Whether `picks` is the minimizer's shortest deterministic schedule
    /// (`true`) or a raw parallel-search artifact (`false`, only if the
    /// minimizer's budget ran out — not expected in practice).
    pub minimized: bool,
}

/// The checker's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No reachable violation within the explored bounds
    /// ([`CheckStats::complete`] says whether the bounds truncated
    /// anything).
    Verified,
    /// A violating execution exists.
    Violated(Counterexample),
}

/// Verdict plus run statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// The answer.
    pub verdict: Verdict,
    /// How much work it took.
    pub stats: CheckStats,
    /// When [`CheckConfig::collect_frontier`] was set: the schedule prefix
    /// of every state truncated at the depth bound, deduplicated by
    /// fingerprint (lexicographically least path per state) and sorted.
    /// Replaying a prefix rebuilds the truncated state, which is how
    /// iterative deepening resumes.
    pub frontier: Vec<Vec<ChannelKey>>,
}

/// The model's terminal-state property: `Err(description)` when a cleanly
/// halted final state is wrong.
pub type FinalCheck<'a, S> = dyn Fn(&S) -> Result<(), String> + Sync + 'a;

/// Classifies a quiesced state: `Some` if it is a violation (recorded
/// error, deadlock, or — when no transition remains — a failed final-state
/// property).
pub fn failure_of<S: StepOracle>(sys: &S, final_ok: &FinalCheck<'_, S>) -> Option<Failure> {
    if let Some(e) = sys.error() {
        return Some(Failure::Sim(e.clone()));
    }
    if sys.enabled().is_empty() {
        if sys.all_halted() {
            if let Err(msg) = final_ok(sys) {
                return Some(Failure::FinalState(msg));
            }
            None
        } else {
            Some(Failure::Sim(sys.deadlock_error()))
        }
    } else {
        None
    }
}

/// One link of a persistent path: the pick that produced this node plus the
/// parent chain. Children share their parent's chain, so branching does not
/// copy paths.
struct PathLink {
    pick: ChannelKey,
    parent: Option<Arc<PathLink>>,
}

impl Drop for PathLink {
    fn drop(&mut self) {
        // Chains reach 10⁵ links on deep models; the derived recursive drop
        // would overflow the thread stack, so unlink iteratively, stopping
        // at the first link something else still holds.
        let mut next = self.parent.take();
        while let Some(arc) = next {
            match Arc::try_unwrap(arc) {
                Ok(mut link) => next = link.parent.take(),
                Err(_) => break,
            }
        }
    }
}

/// Materializes a parent-pointer chain into the explicit schedule prefix.
fn materialize(link: &Option<Arc<PathLink>>) -> Vec<ChannelKey> {
    let mut out = Vec::new();
    let mut cur = link;
    while let Some(l) = cur {
        out.push(l.pick);
        cur = &l.parent;
    }
    out.reverse();
    out
}

struct Node<S> {
    sys: S,
    depth: usize,
    sleep: Vec<ChannelKey>,
    path: Option<Arc<PathLink>>,
}

/// An in-progress expansion on a worker's depth-first stack: the machine
/// (possibly evicted, see below), its admitted sleep set, the transitions
/// already handed out (`explored` — locally walked or donated), and those
/// still pending (consumed back-to-front).
///
/// On deep models the stack reaches the depth bound — 10⁵ frames — and a
/// resident machine per frame is gigabytes. So residency is *windowed*:
/// the top [`RESIDENT_WINDOW`] frames and every [`MILESTONE`]-th frame
/// keep their machine, the rest drop it (`sys: None`) and are rebuilt on
/// demand by replaying the stack's own picks from the nearest resident
/// ancestor ([`Shared::ensure_resident`]). Worker memory is then
/// O(depth/MILESTONE + window) machines instead of O(depth).
struct Frame<S> {
    sys: Option<S>,
    depth: usize,
    sleep: Vec<ChannelKey>,
    explored: Vec<ChannelKey>,
    pending: Vec<ChannelKey>,
    path: Option<Arc<PathLink>>,
}

/// Frames within this distance of the stack top always keep their machine
/// resident — the hot region of the depth-first walk.
const RESIDENT_WINDOW: usize = 64;

/// Every `MILESTONE`-th stack frame stays resident even below the window,
/// bounding any single rebuild replay to `MILESTONE` fires. Frame 0 is
/// always a milestone, so a resident ancestor always exists.
const MILESTONE: usize = 64;

/// A root to explore from, described by the schedule prefix that reaches
/// it (empty for the initial state). The machine state is *not* stored —
/// a worker replays the prefix when it picks the seed up, so a large
/// frontier costs memory proportional to its schedules, not to thousands
/// of resident machine clones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// The schedule prefix reaching the seed state; its length is the
    /// seed's depth.
    pub prefix: Vec<ChannelKey>,
}

impl Seed {
    /// The initial-state seed.
    pub fn root() -> Self {
        Seed { prefix: Vec::new() }
    }
}

/// A queued unit of work: an unexpanded seed (replayed on pickup) or a
/// live node.
enum Work<S> {
    Seed(Seed),
    Node(Node<S>),
}

struct QState<S> {
    items: VecDeque<Work<S>>,
    active: usize,
    stopped: bool,
}

struct Shared<'m, S: StepOracle> {
    cfg: CheckConfig,
    root: &'m S,
    final_ok: &'m FinalCheck<'m, S>,
    queue: Mutex<QState<S>>,
    /// Approximate queue length, readable without the lock — the donation
    /// heuristic's only input, so staleness just means a slightly early or
    /// late donation.
    queue_len: AtomicUsize,
    /// Raised by `record_violation`; checked lock-free on the hot path.
    stop: AtomicBool,
    available: Condvar,
    visited: Visited,
    expansions: AtomicU64,
    depth_truncated: AtomicBool,
    state_truncated: AtomicBool,
    /// Depth-truncated nodes recorded for the frontier (when
    /// `collect_frontier` is on): fingerprint plus path chain (shared with
    /// the exploration tree — materialized only for survivors).
    frontier: Mutex<Vec<(u64, Option<Arc<PathLink>>)>>,
    /// Best (shortest, then lexicographically least) violating path found
    /// so far — an upper bound for the minimizer, not the final answer.
    found: Mutex<Option<(Vec<ChannelKey>, Failure)>>,
}

impl<'m, S: StepOracle + Send> Shared<'m, S> {
    fn pop(&self, stats: &mut CheckStats) -> Option<Node<S>> {
        let work = {
            let mut g = self.queue.lock().unwrap();
            loop {
                if g.stopped {
                    return None;
                }
                if let Some(w) = g.items.pop_front() {
                    g.active += 1;
                    self.queue_len.fetch_sub(1, Ordering::Relaxed);
                    break w;
                }
                if g.active == 0 {
                    return None;
                }
                g = self.available.wait(g).unwrap();
            }
        };
        Some(match work {
            Work::Node(n) => n,
            Work::Seed(seed) => self.replay_seed(seed, stats),
        })
    }

    /// Rebuilds a seed's state by replaying its prefix from the root —
    /// outside the queue lock, since a deep prefix is real work.
    fn replay_seed(&self, seed: Seed, stats: &mut CheckStats) -> Node<S> {
        let mut sys = self.root.clone();
        let mut path = None;
        for &pick in &seed.prefix {
            let fired = sys.fire(pick);
            assert!(
                fired,
                "seed prefix does not replay (pick {pick} not enabled): \
                 checkpoint stale against a changed model?"
            );
            stats.replay_fires += 1;
            path = Some(Arc::new(PathLink { pick, parent: path }));
        }
        Node {
            depth: seed.prefix.len(),
            sys,
            sleep: Vec::new(),
            path,
        }
    }

    fn donate(&self, nodes: Vec<Node<S>>) {
        if nodes.is_empty() {
            return;
        }
        self.queue_len.fetch_add(nodes.len(), Ordering::Relaxed);
        let mut g = self.queue.lock().unwrap();
        g.items.extend(nodes.into_iter().map(Work::Node));
        drop(g);
        self.available.notify_all();
    }

    fn chain_done(&self) {
        let mut g = self.queue.lock().unwrap();
        g.active -= 1;
        if g.active == 0 && g.items.is_empty() {
            drop(g);
            self.available.notify_all();
        }
    }

    fn record_violation(&self, path: Vec<ChannelKey>, failure: Failure) {
        let mut best = self.found.lock().unwrap();
        let better = match &*best {
            None => true,
            Some((p, _)) => (path.len(), &path) < (p.len(), p),
        };
        if better {
            *best = Some((path, failure));
        }
        drop(best);
        self.stop.store(true, Ordering::Relaxed);
        let mut g = self.queue.lock().unwrap();
        g.stopped = true;
        drop(g);
        self.available.notify_all();
    }

    /// Enters one node: classify, gate through the visited set, apply the
    /// budgets. Returns the expansion frame to walk, or `None` if the node
    /// is a leaf (violating, pruned, or truncated).
    fn enter(&self, node: Node<S>, stats: &mut CheckStats) -> Option<Frame<S>> {
        if let Some(f) = failure_of(&node.sys, self.final_ok) {
            self.record_violation(materialize(&node.path), f);
            return None;
        }
        let fp = node.sys.fingerprint();
        let Some(sleep) = self.visited.admit(fp, &node.sleep, node.depth) else {
            stats.dedup_hits += 1;
            return None;
        };
        if node.depth >= self.cfg.max_depth {
            self.depth_truncated.store(true, Ordering::Relaxed);
            if self.cfg.collect_frontier {
                let mut f = self.frontier.lock().unwrap();
                f.push((fp, node.path.clone()));
            }
            return None;
        }
        if self.expansions.fetch_add(1, Ordering::Relaxed) >= self.cfg.max_states {
            self.state_truncated.store(true, Ordering::Relaxed);
            return None;
        }
        stats.expansions += 1;
        stats.max_depth_seen = stats.max_depth_seen.max(node.depth);
        let mut pending = node.sys.enabled();
        stats.transitions_enabled += pending.len() as u64;
        if self.cfg.por {
            pending.retain(|t| {
                let asleep = sleep.contains(t);
                stats.sleep_skips += asleep as u64;
                !asleep
            });
        }
        // `pending` is consumed back-to-front; reverse so local descent
        // takes transitions in canonical order.
        pending.reverse();
        Some(Frame {
            sys: Some(node.sys),
            depth: node.depth,
            sleep,
            explored: Vec::new(),
            pending,
            path: node.path,
        })
    }

    /// Rebuilds an evicted frame's machine by replaying the stack's own
    /// picks from the nearest resident ancestor (at most [`MILESTONE`]
    /// fires away), refilling every frame along the span so an imminent
    /// backtrack cascade pops already-resident frames at O(1) each.
    fn ensure_resident(&self, frames: &mut [Frame<S>], i: usize, stats: &mut CheckStats) {
        if frames[i].sys.is_some() {
            return;
        }
        let j = (0..i)
            .rev()
            .find(|&k| frames[k].sys.is_some())
            .expect("frame 0 is a milestone and stays resident");
        let mut sys = frames[j].sys.as_ref().unwrap().clone();
        let span = &mut frames[j + 1..=i];
        let last = span.len() - 1;
        for (k, frame) in span.iter_mut().enumerate() {
            let pick = frame
                .path
                .as_ref()
                .expect("non-root frames record their pick")
                .pick;
            let fired = sys.fire(pick);
            debug_assert!(fired, "stack pick must replay");
            stats.replay_fires += 1;
            if k < last {
                frame.sys = Some(sys.clone());
            }
        }
        frames[i].sys = Some(sys);
    }

    /// Called after a push: the frame that just left the resident window
    /// drops its machine, unless it is a milestone.
    fn evict(frames: &mut [Frame<S>]) {
        if frames.len() > RESIDENT_WINDOW {
            let i = frames.len() - 1 - RESIDENT_WINDOW;
            if !i.is_multiple_of(MILESTONE) {
                frames[i].sys = None;
            }
        }
    }

    /// Derives the child of `frame` for pick `t`: clone, fire, compute the
    /// child sleep set, and mark `t` explored (so later siblings sleep on
    /// it — whether the child is walked locally or donated).
    fn child_of(&self, frame: &mut Frame<S>, t: ChannelKey, stats: &mut CheckStats) -> Node<S> {
        let mut sys = frame
            .sys
            .as_ref()
            .expect("caller ensured residency")
            .clone();
        let fired = sys.fire(t);
        debug_assert!(fired, "enabled transition must fire");
        stats.transitions_fired += 1;
        let child_sleep = if self.cfg.por {
            let mut cs: Vec<ChannelKey> = frame
                .sleep
                .iter()
                .chain(frame.explored.iter())
                .filter(|u| !u.depends(t))
                .copied()
                .collect();
            cs.sort_unstable();
            cs.dedup();
            cs
        } else {
            Vec::new()
        };
        frame.explored.push(t);
        Node {
            sys,
            depth: frame.depth + 1,
            sleep: child_sleep,
            path: Some(Arc::new(PathLink {
                pick: t,
                parent: frame.path.clone(),
            })),
        }
    }

    /// When the shared queue is starved, peel pending picks off the
    /// *shallowest* frames (the biggest unexplored subtrees) and donate
    /// them as nodes, so idle workers get substantial work.
    fn share(&self, frames: &mut [Frame<S>], stats: &mut CheckStats) {
        if self.cfg.workers == 1 || self.queue_len.load(Ordering::Relaxed) >= self.cfg.workers {
            return;
        }
        let mut donated = Vec::new();
        'peel: for i in 0..frames.len() {
            while !frames[i].pending.is_empty() {
                let want =
                    self.cfg.workers - self.queue_len.load(Ordering::Relaxed).min(self.cfg.workers);
                if donated.len() >= want {
                    break 'peel;
                }
                // The far end from local descent's `pop`, so stealing
                // does not perturb the local walk order.
                self.ensure_resident(frames, i, stats);
                let t = frames[i].pending.remove(0);
                donated.push(self.child_of(&mut frames[i], t, stats));
            }
        }
        self.donate(donated);
    }

    fn worker(&self) -> CheckStats {
        let mut stats = CheckStats::default();
        while let Some(node) = self.pop(&mut stats) {
            // Depth-first over an explicit frame stack: children derived
            // on demand, machine residency windowed (see [`Frame`]) — the
            // worker's memory is O(depth/MILESTONE + window) machines.
            let mut frames: Vec<Frame<S>> = Vec::new();
            if let Some(f) = self.enter(node, &mut stats) {
                frames.push(f);
            }
            while !frames.is_empty() {
                if self.stop.load(Ordering::Relaxed) {
                    break;
                }
                self.share(&mut frames, &mut stats);
                let i = frames.len() - 1;
                if frames[i].pending.is_empty() {
                    frames.pop();
                    continue;
                }
                self.ensure_resident(&mut frames, i, &mut stats);
                let t = frames[i].pending.pop().expect("pending is non-empty");
                let child = self.child_of(&mut frames[i], t, &mut stats);
                if let Some(f) = self.enter(child, &mut stats) {
                    frames.push(f);
                    Self::evict(&mut frames);
                }
            }
            self.chain_done();
        }
        stats
    }
}

/// Explores the full bounded state space of `root` and reports.
///
/// If a violation is found, the reported counterexample is re-derived by the
/// sequential [`minimize`] pass, so it is the shortest schedule (ties broken
/// by canonical channel order) regardless of worker count or scheduling —
/// the parallel phase only answers *whether* a violation exists and bounds
/// the minimizer's search depth.
pub fn explore<S>(root: &S, final_ok: &FinalCheck<'_, S>, cfg: &CheckConfig) -> CheckReport
where
    S: StepOracle + Send + Sync,
{
    let raw = explore_seeds(root, vec![Seed::root()], final_ok, cfg);
    finish(root, final_ok, raw)
}

/// The outcome of the parallel phase, before minimization: the raw found
/// path (if any), the run counters, and the frontier.
pub struct RawExploration {
    /// The best violating path the parallel phase saw (not minimized).
    pub found: Option<(Vec<ChannelKey>, Failure)>,
    /// Run counters.
    pub stats: CheckStats,
    /// Deduplicated, sorted frontier prefixes (empty unless
    /// [`CheckConfig::collect_frontier`]).
    pub frontier: Vec<Vec<ChannelKey>>,
}

/// Runs the parallel exploration phase from an explicit seed set — the
/// initial state, or a checkpointed frontier being resumed. Seeds are
/// schedule prefixes replayed from `root` on pickup, so violations and
/// frontiers report full paths from the true initial state;
/// `cfg.max_depth` remains an *absolute* depth bound. No counterexample
/// minimization happens here (the caller owns the true root); most callers
/// want [`explore`].
pub fn explore_seeds<S>(
    root: &S,
    seeds: Vec<Seed>,
    final_ok: &FinalCheck<'_, S>,
    cfg: &CheckConfig,
) -> RawExploration
where
    S: StepOracle + Send + Sync,
{
    assert!(cfg.workers >= 1, "need at least one worker");
    let items: VecDeque<Work<S>> = seeds.into_iter().map(Work::Seed).collect();
    let shared = Shared {
        cfg: *cfg,
        root,
        final_ok,
        queue_len: AtomicUsize::new(items.len()),
        stop: AtomicBool::new(false),
        queue: Mutex::new(QState {
            items,
            active: 0,
            stopped: false,
        }),
        available: Condvar::new(),
        visited: Visited::new(cfg.visited, cfg.spill_budget_bytes),
        expansions: AtomicU64::new(0),
        depth_truncated: AtomicBool::new(false),
        state_truncated: AtomicBool::new(false),
        frontier: Mutex::new(Vec::new()),
        found: Mutex::new(None),
    };
    let mut stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|_| scope.spawn(|| shared.worker()))
            .collect();
        let mut total = CheckStats::default();
        for h in handles {
            let s = h.join().expect("checker worker panicked");
            total.expansions += s.expansions;
            total.transitions_fired += s.transitions_fired;
            total.transitions_enabled += s.transitions_enabled;
            total.sleep_skips += s.sleep_skips;
            total.dedup_hits += s.dedup_hits;
            total.replay_fires += s.replay_fires;
            total.max_depth_seen = total.max_depth_seen.max(s.max_depth_seen);
        }
        total
    });
    stats.unique_states = shared.visited.unique_states();
    stats.depth_truncated = shared.depth_truncated.load(Ordering::Relaxed);
    stats.state_truncated = shared.state_truncated.load(Ordering::Relaxed);
    if let Visited::Bitstate(filter) = &shared.visited {
        stats.filter_bits = filter.bits();
        stats.filter_bits_set = filter.bits_set();
    }
    if let Visited::Exact(store) = &shared.visited {
        let (runs, entries) = store.spill_counters();
        stats.spilled_runs = runs;
        stats.spilled_entries = entries;
        stats.visited_peak_bytes = store.peak_hot_bytes();
    }
    // Frontier: keep only nodes whose *final* stored depth is the bound
    // (anything re-reached shallower was expanded this round and is not
    // frontier), then canonicalize to the lexicographically least path per
    // fingerprint. In exact mode that makes the frontier *state set*
    // deterministic across schedules and worker counts.
    let mut frontier: Vec<Vec<ChannelKey>> = Vec::new();
    let recorded = shared.frontier.lock().unwrap();
    if !recorded.is_empty() {
        let mut best: HashMap<u64, Vec<ChannelKey>> = HashMap::new();
        for (fp, chain) in recorded.iter() {
            if !shared.visited.at_frontier(*fp, cfg.max_depth) {
                continue;
            }
            let path = materialize(chain);
            match best.get(fp) {
                Some(prev) if *prev <= path => {}
                _ => {
                    best.insert(*fp, path);
                }
            }
        }
        frontier = best.into_values().collect();
        frontier.sort_unstable();
    }
    drop(recorded);
    RawExploration {
        found: shared.found.into_inner().unwrap(),
        stats,
        frontier,
    }
}

/// Turns a raw exploration into the reported verdict, minimizing any found
/// violation from the true initial state.
pub fn finish<S>(root: &S, final_ok: &FinalCheck<'_, S>, raw: RawExploration) -> CheckReport
where
    S: StepOracle,
{
    let mut stats = raw.stats;
    let verdict = match raw.found {
        None => Verdict::Verified,
        Some((path, failure)) => {
            let ce = minimize(root, final_ok, path.len()).unwrap_or(Counterexample {
                picks: path,
                failure,
                minimized: false,
            });
            // A violation stops exploration early; whatever the budget
            // flags say, the set of explored states is not the fixpoint.
            stats.state_truncated = true;
            Verdict::Violated(ce)
        }
    };
    CheckReport {
        verdict,
        stats,
        frontier: raw.frontier,
    }
}

/// Finds the shortest violating schedule of length ≤ `max_len`, determin-
/// istically: iterative-deepening depth-first search in canonical channel
/// order, *without* partial-order reduction (reduction preserves the
/// existence of violations but not their minimal length), deduplicating
/// states by (fingerprint, depth) within each deepening round.
pub fn minimize<S: StepOracle>(
    root: &S,
    final_ok: &FinalCheck<'_, S>,
    max_len: usize,
) -> Option<Counterexample> {
    if let Some(f) = failure_of(root, final_ok) {
        return Some(Counterexample {
            picks: Vec::new(),
            failure: f,
            minimized: true,
        });
    }
    for target in 1..=max_len {
        let mut visited: HashMap<u64, usize> = HashMap::new();
        let mut path = Vec::new();
        if let Some(ce) = dfs_to(root, final_ok, target, &mut path, &mut visited) {
            return Some(ce);
        }
    }
    None
}

fn dfs_to<S: StepOracle>(
    sys: &S,
    final_ok: &FinalCheck<'_, S>,
    target: usize,
    path: &mut Vec<ChannelKey>,
    visited: &mut HashMap<u64, usize>,
) -> Option<Counterexample> {
    let depth = path.len();
    let fp = sys.fingerprint();
    match visited.get(&fp) {
        Some(&d) if d <= depth => return None,
        _ => {
            visited.insert(fp, depth);
        }
    }
    for t in sys.enabled() {
        let mut child = sys.clone();
        if !child.fire(t) {
            continue;
        }
        path.push(t);
        if let Some(f) = failure_of(&child, final_ok) {
            return Some(Counterexample {
                picks: path.clone(),
                failure: f,
                minimized: true,
            });
        }
        if path.len() < target {
            if let Some(ce) = dfs_to(&child, final_ok, target, path, visited) {
                return Some(ce);
            }
        }
        path.pop();
    }
    None
}
