//! The parallel sleep-set explorer.
//!
//! Explores every message-delivery interleaving of a [`StepOracle`] machine
//! from its initial state, up to configurable depth/state budgets, checking
//! for recorded protocol errors, deadlocks, and final-state property
//! violations.
//!
//! # State space
//!
//! A *state* is a quiesced machine: every core-local event has run, so the
//! only enabled transitions are channel deliveries ([`StepOracle::enabled`]).
//! Two states are identified iff their canonical fingerprints
//! ([`StepOracle::fingerprint`]) match — a 64-bit hash, so the visited set
//! is sound up to hash collisions (≈ `n²/2⁶⁴` for `n` states; negligible at
//! the ≤10⁶-state spaces this checker targets, and any collision only
//! *under*-explores, it cannot fabricate a violation).
//!
//! # Partial-order reduction
//!
//! Classic sleep sets (Godefroid) over the delivery-dependence relation
//! [`ChannelKey::depends`]: deliveries to distinct endpoints commute (each
//! mutates only its destination controller; memory controllers are mutually
//! dependent through the shared memory image), so of the `k!` orders of `k`
//! pairwise-independent deliveries only one is explored. Sleep sets compose
//! with the visited set via the *subset-prune* rule: the visited entry for a
//! fingerprint stores the sleep set (and depth) it was last expanded with,
//! and a revisit is pruned only if its sleep set is a superset (nothing new
//! would be explored) **and** it is not shallower (nothing new fits in the
//! depth budget). Otherwise the entry is weakened to the intersection /
//! minimum and the state re-expanded. Expansion is therefore monotone and
//! converges to a least fixpoint, making the final visited *set*
//! deterministic across runs and worker counts even though scheduling
//! racing makes the expansion *count* vary.
//!
//! # Parallelism
//!
//! Plain OS threads over a shared injector deque. Each worker pops one node,
//! then runs a depth-first local chain (expand, keep one child, donate the
//! rest to the deque and wake siblings), which keeps the hot path off the
//! lock and spreads work without per-worker deques. Termination is the
//! classic "queue empty and no worker active" condition under one mutex.

use dvs_core::oracle::{ChannelKey, StepOracle};
use dvs_core::system::SimError;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Exploration budgets and strategy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Worker threads. 1 = sequential.
    pub workers: usize,
    /// Maximum deliveries along any one path. Paths that reach the bound
    /// without terminating mark the run incomplete. The default is high
    /// enough that the visited set, not the depth, bounds exploration.
    pub max_depth: usize,
    /// Maximum node expansions (including sleep-set re-expansions) before
    /// the run gives up and marks itself incomplete.
    pub max_states: u64,
    /// Enable sleep-set partial-order reduction. Disabling explores the
    /// full interleaving tree (modulo the visited set) — used to measure
    /// the reduction factor and by soundness cross-checks.
    pub por: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            workers: 1,
            max_depth: 100_000,
            max_states: 2_000_000,
            por: true,
        }
    }
}

/// Counters describing one exploration run.
///
/// `unique_states` is deterministic for a given model and config (see the
/// module docs); the other counters depend on scheduling and are reported
/// for diagnostics and benchmarking only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct canonical fingerprints visited.
    pub unique_states: u64,
    /// Node expansions, including sleep-set/depth re-expansions.
    pub expansions: u64,
    /// Deliveries actually performed (edges walked).
    pub transitions_fired: u64,
    /// Sum of enabled-transition counts over all expansions — what a
    /// reduction-free explorer would have fired from the same states.
    pub transitions_enabled: u64,
    /// Transitions skipped because they were in the sleep set.
    pub sleep_skips: u64,
    /// Revisits pruned by the visited set.
    pub dedup_hits: u64,
    /// Deepest path expanded.
    pub max_depth_seen: usize,
    /// Whether every within-budget state was fully expanded. `false` means
    /// a depth or state budget was hit and "no violation" is only a
    /// bounded claim.
    pub complete: bool,
}

/// What went wrong in a violating execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The machine recorded an error: a runtime coherence-invariant
    /// violation, a VM assertion, or a deadlock (empty channels with
    /// threads still running).
    Sim(SimError),
    /// All threads halted cleanly but the final memory state violated the
    /// model's property (e.g. a litmus test's SC verdict).
    FinalState(String),
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Sim(e) => write!(f, "{e}"),
            Failure::FinalState(msg) => write!(f, "final state violates property: {msg}"),
        }
    }
}

/// A violating execution: the delivery schedule from the initial state and
/// the failure it ends in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The channel picked at each delivery, in order. Feed to
    /// [`SchedulePlan`](dvs_core::oracle::SchedulePlan) for replay on the
    /// real system.
    pub picks: Vec<ChannelKey>,
    /// How the execution fails after the last pick.
    pub failure: Failure,
    /// Whether `picks` is the minimizer's shortest deterministic schedule
    /// (`true`) or a raw parallel-search artifact (`false`, only if the
    /// minimizer's budget ran out — not expected in practice).
    pub minimized: bool,
}

/// The checker's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No reachable violation within the explored bounds
    /// ([`CheckStats::complete`] says whether the bounds truncated
    /// anything).
    Verified,
    /// A violating execution exists.
    Violated(Counterexample),
}

/// Verdict plus run statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// The answer.
    pub verdict: Verdict,
    /// How much work it took.
    pub stats: CheckStats,
}

/// The model's terminal-state property: `Err(description)` when a cleanly
/// halted final state is wrong.
pub type FinalCheck<'a, S> = dyn Fn(&S) -> Result<(), String> + Sync + 'a;

/// Classifies a quiesced state: `Some` if it is a violation (recorded
/// error, deadlock, or — when no transition remains — a failed final-state
/// property).
pub fn failure_of<S: StepOracle>(sys: &S, final_ok: &FinalCheck<'_, S>) -> Option<Failure> {
    if let Some(e) = sys.error() {
        return Some(Failure::Sim(e.clone()));
    }
    if sys.enabled().is_empty() {
        if sys.all_halted() {
            if let Err(msg) = final_ok(sys) {
                return Some(Failure::FinalState(msg));
            }
            None
        } else {
            Some(Failure::Sim(sys.deadlock_error()))
        }
    } else {
        None
    }
}

struct Node<S> {
    sys: S,
    depth: usize,
    sleep: Vec<ChannelKey>,
    path: Vec<ChannelKey>,
}

/// Visited-set shard count; fingerprints spread across shards to keep lock
/// contention off the hot path.
const SHARDS: usize = 64;

/// One visited-set shard: fingerprint → (sleep set stored for that state,
/// minimal depth at which it was reached). See [`Shared::admit`].
type VisitedShard = Mutex<HashMap<u64, (Vec<ChannelKey>, usize)>>;

struct QState<S> {
    items: VecDeque<Node<S>>,
    active: usize,
    stopped: bool,
}

struct Shared<'m, S: StepOracle> {
    cfg: CheckConfig,
    final_ok: &'m FinalCheck<'m, S>,
    queue: Mutex<QState<S>>,
    available: Condvar,
    visited: Vec<VisitedShard>,
    expansions: AtomicU64,
    truncated: AtomicBool,
    /// Best (shortest, then lexicographically least) violating path found
    /// so far — an upper bound for the minimizer, not the final answer.
    found: Mutex<Option<(Vec<ChannelKey>, Failure)>>,
}

impl<'m, S: StepOracle + Send> Shared<'m, S> {
    fn pop(&self) -> Option<Node<S>> {
        let mut g = self.queue.lock().unwrap();
        loop {
            if g.stopped {
                return None;
            }
            if let Some(n) = g.items.pop_front() {
                g.active += 1;
                return Some(n);
            }
            if g.active == 0 {
                return None;
            }
            g = self.available.wait(g).unwrap();
        }
    }

    fn donate(&self, nodes: Vec<Node<S>>) {
        if nodes.is_empty() {
            return;
        }
        let mut g = self.queue.lock().unwrap();
        g.items.extend(nodes);
        drop(g);
        self.available.notify_all();
    }

    fn chain_done(&self) {
        let mut g = self.queue.lock().unwrap();
        g.active -= 1;
        if g.active == 0 && g.items.is_empty() {
            drop(g);
            self.available.notify_all();
        }
    }

    fn stopped(&self) -> bool {
        self.queue.lock().unwrap().stopped
    }

    fn record_violation(&self, path: Vec<ChannelKey>, failure: Failure) {
        let mut best = self.found.lock().unwrap();
        let better = match &*best {
            None => true,
            Some((p, _)) => (path.len(), &path) < (p.len(), p),
        };
        if better {
            *best = Some((path, failure));
        }
        drop(best);
        let mut g = self.queue.lock().unwrap();
        g.stopped = true;
        drop(g);
        self.available.notify_all();
    }

    /// Visited-set gate for a node about to be expanded. Returns the sleep
    /// set to expand with, or `None` to prune.
    fn admit(&self, fp: u64, sleep: &[ChannelKey], depth: usize) -> Option<Vec<ChannelKey>> {
        let shard = &self.visited[(fp % SHARDS as u64) as usize];
        let mut map = shard.lock().unwrap();
        match map.get_mut(&fp) {
            None => {
                map.insert(fp, (sleep.to_vec(), depth));
                Some(sleep.to_vec())
            }
            Some((stored, stored_depth)) => {
                let subset = stored.iter().all(|k| sleep.contains(k));
                if subset && *stored_depth <= depth {
                    return None;
                }
                let merged: Vec<ChannelKey> = stored
                    .iter()
                    .filter(|k| sleep.contains(k))
                    .copied()
                    .collect();
                *stored = merged.clone();
                *stored_depth = (*stored_depth).min(depth);
                Some(merged)
            }
        }
    }

    /// Expands one node: classify, gate through the visited set, fire every
    /// non-slept transition. Returns the children to continue with.
    fn expand(&self, node: Node<S>, stats: &mut CheckStats) -> Vec<Node<S>> {
        if let Some(f) = failure_of(&node.sys, self.final_ok) {
            self.record_violation(node.path, f);
            return Vec::new();
        }
        let fp = node.sys.fingerprint();
        let Some(sleep) = self.admit(fp, &node.sleep, node.depth) else {
            stats.dedup_hits += 1;
            return Vec::new();
        };
        if node.depth >= self.cfg.max_depth
            || self.expansions.fetch_add(1, Ordering::Relaxed) >= self.cfg.max_states
        {
            self.truncated.store(true, Ordering::Relaxed);
            return Vec::new();
        }
        stats.expansions += 1;
        stats.max_depth_seen = stats.max_depth_seen.max(node.depth);
        let enabled = node.sys.enabled();
        stats.transitions_enabled += enabled.len() as u64;
        let mut explored: Vec<ChannelKey> = Vec::new();
        let mut children = Vec::new();
        for t in enabled {
            if self.cfg.por && sleep.contains(&t) {
                stats.sleep_skips += 1;
                continue;
            }
            let mut child = node.sys.clone();
            let fired = child.fire(t);
            debug_assert!(fired, "enabled transition must fire");
            stats.transitions_fired += 1;
            let child_sleep = if self.cfg.por {
                let mut cs: Vec<ChannelKey> = sleep
                    .iter()
                    .chain(explored.iter())
                    .filter(|u| !u.depends(t))
                    .copied()
                    .collect();
                cs.sort_unstable();
                cs.dedup();
                cs
            } else {
                Vec::new()
            };
            let mut child_path = node.path.clone();
            child_path.push(t);
            children.push(Node {
                sys: child,
                depth: node.depth + 1,
                sleep: child_sleep,
                path: child_path,
            });
            explored.push(t);
        }
        children
    }

    fn worker(&self) -> CheckStats {
        let mut stats = CheckStats::default();
        while let Some(seed) = self.pop() {
            let mut local = vec![seed];
            while let Some(node) = local.pop() {
                if self.stopped() {
                    break;
                }
                let mut children = self.expand(node, &mut stats);
                // Keep one child for the local depth-first chain, donate
                // the rest so idle workers can pick them up.
                if let Some(next) = children.pop() {
                    local.push(next);
                }
                self.donate(children);
            }
            self.chain_done();
        }
        stats
    }
}

/// Explores the full bounded state space of `root` and reports.
///
/// If a violation is found, the reported counterexample is re-derived by the
/// sequential [`minimize`] pass, so it is the shortest schedule (ties broken
/// by canonical channel order) regardless of worker count or scheduling —
/// the parallel phase only answers *whether* a violation exists and bounds
/// the minimizer's search depth.
pub fn explore<S>(root: &S, final_ok: &FinalCheck<'_, S>, cfg: &CheckConfig) -> CheckReport
where
    S: StepOracle + Send + Sync,
{
    assert!(cfg.workers >= 1, "need at least one worker");
    let shared = Shared {
        cfg: *cfg,
        final_ok,
        queue: Mutex::new(QState {
            items: VecDeque::from([Node {
                sys: root.clone(),
                depth: 0,
                sleep: Vec::new(),
                path: Vec::new(),
            }]),
            active: 0,
            stopped: false,
        }),
        available: Condvar::new(),
        visited: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        expansions: AtomicU64::new(0),
        truncated: AtomicBool::new(false),
        found: Mutex::new(None),
    };
    let mut stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|_| scope.spawn(|| shared.worker()))
            .collect();
        let mut total = CheckStats {
            complete: true,
            ..CheckStats::default()
        };
        for h in handles {
            let s = h.join().expect("checker worker panicked");
            total.expansions += s.expansions;
            total.transitions_fired += s.transitions_fired;
            total.transitions_enabled += s.transitions_enabled;
            total.sleep_skips += s.sleep_skips;
            total.dedup_hits += s.dedup_hits;
            total.max_depth_seen = total.max_depth_seen.max(s.max_depth_seen);
        }
        total
    });
    stats.unique_states = shared
        .visited
        .iter()
        .map(|m| m.lock().unwrap().len() as u64)
        .sum();
    stats.complete = !shared.truncated.load(Ordering::Relaxed);
    let found = shared.found.into_inner().unwrap();
    let verdict = match found {
        None => Verdict::Verified,
        Some((path, failure)) => {
            let ce = minimize(root, final_ok, path.len()).unwrap_or(Counterexample {
                picks: path,
                failure,
                minimized: false,
            });
            stats.complete = false;
            Verdict::Violated(ce)
        }
    };
    CheckReport { verdict, stats }
}

/// Finds the shortest violating schedule of length ≤ `max_len`, determin-
/// istically: iterative-deepening depth-first search in canonical channel
/// order, *without* partial-order reduction (reduction preserves the
/// existence of violations but not their minimal length), deduplicating
/// states by (fingerprint, depth) within each deepening round.
pub fn minimize<S: StepOracle>(
    root: &S,
    final_ok: &FinalCheck<'_, S>,
    max_len: usize,
) -> Option<Counterexample> {
    if let Some(f) = failure_of(root, final_ok) {
        return Some(Counterexample {
            picks: Vec::new(),
            failure: f,
            minimized: true,
        });
    }
    for target in 1..=max_len {
        let mut visited: HashMap<u64, usize> = HashMap::new();
        let mut path = Vec::new();
        if let Some(ce) = dfs_to(root, final_ok, target, &mut path, &mut visited) {
            return Some(ce);
        }
    }
    None
}

fn dfs_to<S: StepOracle>(
    sys: &S,
    final_ok: &FinalCheck<'_, S>,
    target: usize,
    path: &mut Vec<ChannelKey>,
    visited: &mut HashMap<u64, usize>,
) -> Option<Counterexample> {
    let depth = path.len();
    let fp = sys.fingerprint();
    match visited.get(&fp) {
        Some(&d) if d <= depth => return None,
        _ => {
            visited.insert(fp, depth);
        }
    }
    for t in sys.enabled() {
        let mut child = sys.clone();
        if !child.fire(t) {
            continue;
        }
        path.push(t);
        if let Some(f) = failure_of(&child, final_ok) {
            return Some(Counterexample {
                picks: path.clone(),
                failure: f,
                minimized: true,
            });
        }
        if path.len() < target {
            if let Some(ce) = dfs_to(&child, final_ok, target, path, visited) {
                return Some(ce);
            }
        }
        path.pop();
    }
    None
}
