//! Iterative deepening with resumable frontier checkpoints.
//!
//! A deepening run explores in *rounds*: round `k` explores up to an
//! absolute depth bound, collecting the frontier — the schedule prefixes of
//! the states truncated exactly at the bound — and round `k+1` re-seeds
//! from those prefixes with the bound raised. Because a schedule prefix
//! rebuilds its state by replay, the frontier is a complete, *portable*
//! description of where exploration stopped: a few kilobytes of channel
//! picks instead of gigabytes of machine states.
//!
//! Between rounds the frontier is serialized to a checkpoint file, so a
//! long run can be killed — by a budget, a deadline, or `kill -9` — and
//! resumed. Rounds are the atomic unit of progress: a kill mid-round loses
//! at most that round's work, and resuming re-runs it from the last saved
//! frontier. In exact visited mode each round's explored set is a
//! deterministic function of (seeds, depth bound) — see the fixpoint
//! argument in [`explore`](crate::explore) — so an interrupted-and-resumed
//! run reports the same verdict and the same cumulative `unique_states` as
//! an uninterrupted one.
//!
//! # Checkpoint format (`DVSCKPT1`)
//!
//! Little-endian, append-only within a file, written atomically
//! (temp file + rename) so a reader never sees a torn write:
//!
//! ```text
//! magic    "DVSCKPT1"                      8 bytes
//! root_fp  canonical fingerprint of depth-0 state   u64
//! depth    bound the frontier is truncated at       u64
//! round    completed rounds                         u32
//! stats    cumulative counters                      10×u64,u64(depth seen),2×u8 flags,2 pad
//! count    frontier prefixes                        u64
//! prefix*  len u32, then len picks × 8 bytes
//!          pick: chan kind u8, endpoint kind u8, node u16, ep id u16, pad u16
//! checksum FNV-1a over everything above             u64
//! ```
//!
//! Loading verifies magic, version, checksum, and structural bounds, and
//! [`deepen`] additionally verifies `root_fp` against the model it was
//! given. Every failure is a hard error — a checkpoint that cannot be
//! trusted is *rejected*, never silently skipped, because starting over
//! from depth 0 behind the caller's back would silently change what
//! "resume" means.

use crate::explore::{
    explore_seeds, finish, CheckConfig, CheckReport, CheckStats, FinalCheck, RawExploration, Seed,
    Verdict,
};
use dvs_core::msg::Endpoint;
use dvs_core::oracle::{ChannelKey, StepOracle};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAGIC: &[u8; 8] = b"DVSCKPT1";
const PICK_SIZE: usize = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a checkpoint could not be used. All variants are terminal: the
/// caller decides whether to delete the file and start over — the library
/// never does that on its own.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing.
    Io(io::Error),
    /// The file is not a well-formed `DVSCKPT1` checkpoint: bad magic,
    /// failed checksum, truncation, or an out-of-range field.
    Corrupt(String),
    /// The checkpoint is well-formed but belongs to a different model
    /// (root fingerprint mismatch).
    ModelMismatch { expected: u64, found: u64 },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint rejected: {why}"),
            CheckpointError::ModelMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different model (root fp {found:#x}, expected {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn encode_pick(buf: &mut Vec<u8>, pick: ChannelKey) {
    let (chan_kind, node, ep) = match pick {
        ChannelKey::Net(node, ep) => (0u8, node as u64, ep),
        ChannelKey::Local(ep) => (1u8, 0, ep),
    };
    let (ep_kind, ep_id) = match ep {
        Endpoint::L1(i) => (0u8, i as u64),
        Endpoint::Bank(b) => (1u8, b as u64),
        Endpoint::Mem(n) => (2u8, n as u64),
    };
    assert!(node <= u16::MAX as u64 && ep_id <= u16::MAX as u64);
    buf.push(chan_kind);
    buf.push(ep_kind);
    buf.extend_from_slice(&(node as u16).to_le_bytes());
    buf.extend_from_slice(&(ep_id as u16).to_le_bytes());
    buf.extend_from_slice(&[0, 0]);
}

fn decode_pick(rec: &[u8]) -> Result<ChannelKey, CheckpointError> {
    let node = u16::from_le_bytes([rec[2], rec[3]]) as usize;
    let ep_id = u16::from_le_bytes([rec[4], rec[5]]) as usize;
    let ep = match rec[1] {
        0 => Endpoint::L1(ep_id),
        1 => Endpoint::Bank(ep_id),
        2 => Endpoint::Mem(ep_id),
        k => return Err(CheckpointError::Corrupt(format!("endpoint kind {k}"))),
    };
    match rec[0] {
        0 => Ok(ChannelKey::Net(node, ep)),
        1 if node == 0 => Ok(ChannelKey::Local(ep)),
        k => Err(CheckpointError::Corrupt(format!("channel kind {k}"))),
    }
}

/// A saved deepening position: everything round `k+1` needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the depth-0 state — binds the file to one model.
    pub root_fp: u64,
    /// The depth bound the frontier is truncated at; the next round
    /// explores beyond it.
    pub depth: usize,
    /// Completed rounds.
    pub round: u32,
    /// Counters accumulated over completed rounds.
    pub stats: CheckStats,
    /// Frontier schedule prefixes (each of length `depth`), sorted.
    pub frontier: Vec<Vec<ChannelKey>>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.frontier.len() * 16);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&self.root_fp.to_le_bytes());
        buf.extend_from_slice(&(self.depth as u64).to_le_bytes());
        buf.extend_from_slice(&self.round.to_le_bytes());
        let s = &self.stats;
        for v in [
            s.unique_states,
            s.expansions,
            s.transitions_fired,
            s.transitions_enabled,
            s.sleep_skips,
            s.dedup_hits,
            s.spilled_runs,
            s.spilled_entries,
            s.visited_peak_bytes,
            s.replay_fires,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&(s.max_depth_seen as u64).to_le_bytes());
        buf.push(s.depth_truncated as u8);
        buf.push(s.state_truncated as u8);
        buf.extend_from_slice(&[0, 0]);
        buf.extend_from_slice(&(self.frontier.len() as u64).to_le_bytes());
        for prefix in &self.frontier {
            buf.extend_from_slice(&(prefix.len() as u32).to_le_bytes());
            for &pick in prefix {
                encode_pick(&mut buf, pick);
            }
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Writes the checkpoint atomically: a temp file in the same directory,
    /// fsynced, then renamed over `path`. A crash mid-save leaves either
    /// the old checkpoint or the new one, never a torn mix.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&self.encode())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and verifies a checkpoint. Any structural problem — bad magic,
    /// bad checksum, truncation, out-of-range fields — is a
    /// [`CheckpointError::Corrupt`] rejection.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Self::decode(&buf)
    }

    fn decode(buf: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let corrupt = |why: &str| CheckpointError::Corrupt(why.to_string());
        // magic(8) fp(8) depth(8) round(4) stats(10*8+8+4) count(8) sum(8)
        const FIXED: usize = 8 + 8 + 8 + 4 + (10 * 8 + 8 + 4) + 8 + 8;
        if buf.len() < FIXED {
            return Err(corrupt("truncated header"));
        }
        let (body, sum_bytes) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        if &body[..8] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().unwrap());
        let root_fp = u64_at(8);
        let depth = u64_at(16) as usize;
        let round = u32::from_le_bytes(body[24..28].try_into().unwrap());
        let mut off = 28;
        let mut counters = [0u64; 10];
        for c in counters.iter_mut() {
            *c = u64_at(off);
            off += 8;
        }
        let max_depth_seen = u64_at(off) as usize;
        off += 8;
        let flags = &body[off..off + 4];
        if flags[0] > 1 || flags[1] > 1 || flags[2] != 0 || flags[3] != 0 {
            return Err(corrupt("bad flag bytes"));
        }
        off += 4;
        let stats = CheckStats {
            unique_states: counters[0],
            expansions: counters[1],
            transitions_fired: counters[2],
            transitions_enabled: counters[3],
            sleep_skips: counters[4],
            dedup_hits: counters[5],
            spilled_runs: counters[6],
            spilled_entries: counters[7],
            visited_peak_bytes: counters[8],
            replay_fires: counters[9],
            max_depth_seen,
            depth_truncated: flags[0] == 1,
            state_truncated: flags[1] == 1,
            filter_bits: 0,
            filter_bits_set: 0,
        };
        let count = u64_at(off);
        off += 8;
        let mut frontier = Vec::new();
        for _ in 0..count {
            if off + 4 > body.len() {
                return Err(corrupt("truncated prefix length"));
            }
            let len = u32::from_le_bytes(body[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            if len != depth {
                return Err(corrupt("prefix length disagrees with frontier depth"));
            }
            if off + len * PICK_SIZE > body.len() {
                return Err(corrupt("truncated prefix"));
            }
            let mut prefix = Vec::with_capacity(len);
            for _ in 0..len {
                prefix.push(decode_pick(&body[off..off + PICK_SIZE])?);
                off += PICK_SIZE;
            }
            frontier.push(prefix);
        }
        if off != body.len() {
            return Err(corrupt("trailing bytes after frontier"));
        }
        Ok(Checkpoint {
            root_fp,
            depth,
            round,
            stats,
            frontier,
        })
    }
}

/// Shape of a deepening run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeepenConfig {
    /// Per-round explorer settings. `max_depth`/`max_states`/
    /// `collect_frontier` are overridden per round; `workers`, `por`,
    /// `visited`, and the spill budget are honored.
    pub base: CheckConfig,
    /// Depth bound of round 0.
    pub start_depth: usize,
    /// How much the bound rises per round.
    pub step: usize,
    /// Final bound: the run stops (possibly still truncated) when a
    /// round's bound reaches it.
    pub max_depth: usize,
    /// Per-round expansion budget. A round that exhausts it gives up with
    /// `state_truncated` — its frontier is incomplete, so deepening stops
    /// there rather than resume from a lie.
    pub round_states: u64,
    /// Where to save the frontier between rounds; `None` disables
    /// checkpointing (and resuming).
    pub checkpoint: Option<PathBuf>,
    /// Sleep inserted after each completed round — widens the window for
    /// kill-drill tests; `None` for production.
    pub round_delay: Option<Duration>,
}

impl Default for DeepenConfig {
    fn default() -> Self {
        DeepenConfig {
            base: CheckConfig::default(),
            start_depth: 64,
            step: 64,
            max_depth: 4096,
            round_states: 2_000_000,
            checkpoint: None,
            round_delay: None,
        }
    }
}

/// A finished deepening run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeepenOutcome {
    /// Verdict plus *cumulative* stats: `unique_states` sums the per-round
    /// unique counts (a state spanning a round boundary is counted in each
    /// round that expands it), which is scheduling-independent in exact
    /// mode and therefore comparable between interrupted and uninterrupted
    /// runs.
    pub report: CheckReport,
    /// Rounds executed in *this* process (a resumed run counts only its
    /// own).
    pub rounds: u32,
    /// Whether the run started from a loaded checkpoint.
    pub resumed: bool,
}

/// Runs iterative deepening from `root`, checkpointing the frontier
/// between rounds and resuming from `cfg.checkpoint` if it exists.
///
/// Returns `Err` — without exploring anything — if an existing checkpoint
/// is corrupt or belongs to a different model.
pub fn deepen<S>(
    root: &S,
    final_ok: &FinalCheck<'_, S>,
    cfg: &DeepenConfig,
) -> Result<DeepenOutcome, CheckpointError>
where
    S: StepOracle + Send + Sync,
{
    assert!(cfg.step > 0, "deepening step must be positive");
    let root_fp = root.fingerprint();
    let mut resumed = false;
    let (mut bound, mut round, mut total, mut seeds) = match &cfg.checkpoint {
        Some(path) if path.exists() => {
            let ck = Checkpoint::load(path)?;
            if ck.root_fp != root_fp {
                return Err(CheckpointError::ModelMismatch {
                    expected: root_fp,
                    found: ck.root_fp,
                });
            }
            resumed = true;
            let seeds = ck
                .frontier
                .iter()
                .map(|prefix| Seed {
                    prefix: prefix.clone(),
                })
                .collect();
            (ck.depth + cfg.step, ck.round, ck.stats, seeds)
        }
        _ => (
            cfg.start_depth,
            0,
            CheckStats::default(),
            vec![Seed::root()],
        ),
    };
    let mut rounds_here = 0;
    loop {
        bound = bound.min(cfg.max_depth);
        let round_cfg = CheckConfig {
            max_depth: bound,
            max_states: cfg.round_states,
            collect_frontier: true,
            ..cfg.base
        };
        let raw = explore_seeds(root, seeds, final_ok, &round_cfg);
        rounds_here += 1;
        round += 1;
        let mut cumulative = total;
        cumulative.absorb(&raw.stats);
        if raw.found.is_some() || raw.stats.state_truncated {
            // Violated, or the round budget fired (frontier incomplete):
            // either way this is the end of the line, not a resume point.
            let report = finish(
                root,
                final_ok,
                RawExploration {
                    found: raw.found,
                    stats: cumulative,
                    frontier: raw.frontier,
                },
            );
            if matches!(report.verdict, Verdict::Violated(_)) {
                if let Some(path) = &cfg.checkpoint {
                    let _ = fs::remove_file(path);
                }
            }
            return Ok(DeepenOutcome {
                report,
                rounds: rounds_here,
                resumed,
            });
        }
        let frontier = raw.frontier;
        total = cumulative;
        // The per-round depth flag only says "this round truncated"; the
        // run as a whole is depth-truncated only if the *final* frontier
        // is nonempty.
        total.depth_truncated = false;
        if frontier.is_empty() || bound >= cfg.max_depth {
            total.depth_truncated = !frontier.is_empty();
            if let Some(path) = &cfg.checkpoint {
                let _ = fs::remove_file(path);
            }
            return Ok(DeepenOutcome {
                report: CheckReport {
                    verdict: Verdict::Verified,
                    stats: total,
                    frontier,
                },
                rounds: rounds_here,
                resumed,
            });
        }
        if let Some(path) = &cfg.checkpoint {
            Checkpoint {
                root_fp,
                depth: bound,
                round,
                stats: total,
                frontier: frontier.clone(),
            }
            .save(path)?;
        }
        if let Some(delay) = cfg.round_delay {
            std::thread::sleep(delay);
        }
        seeds = frontier
            .iter()
            .map(|prefix| Seed {
                prefix: prefix.clone(),
            })
            .collect();
        bound += cfg.step;
    }
}
