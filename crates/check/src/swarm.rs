//! Swarm verification: many cheap seeded probes sharing one lossy filter.
//!
//! Holzmann's swarm idea, adapted to the delivery-oracle state space: when a
//! model is too large to exhaust, run *many small* searches with diversified
//! schedules instead of one big one. Each probe is a randomized depth-first
//! walk (transition order shuffled by a per-probe [`DetRng`] stream) under
//! tight per-probe depth/state budgets; all probes share a single
//! [`BitstateFilter`], so a state one probe has claimed prunes every other
//! probe away from it and the swarm spreads across the space instead of
//! piling onto the canonical prefix.
//!
//! Soundness: a swarm run is *lossy in one direction only*. The filter can
//! mistake a new state for a seen one (a hash collision or another probe's
//! claim), so coverage is probabilistic and `Verified` means only "no
//! violation found" — but every reported violation comes from an actually
//! executed schedule, re-derived through the same sequential
//! [`minimize`](crate::explore::minimize) pass as the exhaustive explorer,
//! so a `Violated` verdict is as trustworthy as an exact-mode one.

use crate::explore::{
    failure_of, finish, CheckReport, CheckStats, FinalCheck, RawExploration, Verdict,
};
use crate::visited::BitstateFilter;
use dvs_core::config::{Protocol, ProtocolMutation};
use dvs_core::oracle::{ChannelKey, StepOracle};
use dvs_core::system::System;
use dvs_vm::litmus::Litmus;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use dvs_engine::DetRng;

/// Swarm shape: how many probes, how big each one is, and how big the
/// shared filter is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwarmConfig {
    /// Probes to launch. More probes = more coverage, linearly in time.
    pub probes: u64,
    /// Worker threads pulling probes off the shared counter.
    pub workers: usize,
    /// Per-probe depth budget (deliveries along one walk).
    pub probe_depth: usize,
    /// Per-probe budget of *newly claimed* states; the probe retires when
    /// it runs out, making probe cost predictable even in dense regions.
    pub probe_states: u64,
    /// Size of the shared bitstate filter, in bits (rounded up to a
    /// multiple of 64).
    pub filter_bits: u64,
    /// Master seed; probe `i` walks with the independent stream
    /// `DetRng::new(seed).split(i)`, so a swarm is reproducible
    /// (single-worker) and its probe set is reproducible at any worker
    /// count.
    pub seed: u64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            probes: 64,
            workers: 1,
            probe_depth: 4_000,
            probe_states: 20_000,
            filter_bits: 1 << 22,
            seed: 0,
        }
    }
}

struct SwarmShared<'m, S: StepOracle> {
    cfg: SwarmConfig,
    final_ok: &'m FinalCheck<'m, S>,
    root: &'m S,
    filter: BitstateFilter,
    next_probe: AtomicU64,
    stop: AtomicBool,
    depth_truncated: AtomicBool,
    state_truncated: AtomicBool,
    found: Mutex<Option<(Vec<ChannelKey>, crate::explore::Failure)>>,
}

struct Frame<S> {
    sys: S,
    /// Transitions still to try from this state, pre-shuffled; popped from
    /// the back.
    order: Vec<ChannelKey>,
}

impl<'m, S: StepOracle + Send + Sync> SwarmShared<'m, S> {
    fn record(&self, path: Vec<ChannelKey>, failure: crate::explore::Failure) {
        let mut best = self.found.lock().unwrap();
        let better = match &*best {
            None => true,
            Some((p, _)) => (path.len(), &path) < (p.len(), p),
        };
        if better {
            *best = Some((path, failure));
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    /// One randomized bounded DFS walk. Returns early on violation (already
    /// recorded) or when the probe's budgets run out.
    fn probe(&self, rng: &mut DetRng, stats: &mut CheckStats) {
        let shuffle = |rng: &mut DetRng, mut ts: Vec<ChannelKey>| {
            for i in (1..ts.len()).rev() {
                let j = rng.range(0, i as u64 + 1) as usize;
                ts.swap(i, j);
            }
            ts
        };
        if let Some(f) = failure_of(self.root, self.final_ok) {
            self.record(Vec::new(), f);
            return;
        }
        // The root is in every probe's walk; claiming it in the filter
        // would kill all probes after the first, so it is exempt.
        let mut claimed: u64 = 0;
        let mut path: Vec<ChannelKey> = Vec::new();
        let mut stack = vec![Frame {
            sys: self.root.clone(),
            order: shuffle(rng, self.root.enabled()),
        }];
        stats.expansions += 1;
        while let Some(frame) = stack.last_mut() {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let Some(t) = frame.order.pop() else {
                stack.pop();
                path.pop();
                continue;
            };
            let mut child = frame.sys.clone();
            let fired = child.fire(t);
            debug_assert!(fired, "enabled transition must fire");
            stats.transitions_fired += 1;
            path.push(t);
            if let Some(f) = failure_of(&child, self.final_ok) {
                self.record(path, f);
                return;
            }
            if !self.filter.insert(child.fingerprint()) {
                stats.dedup_hits += 1;
                path.pop();
                continue;
            }
            claimed += 1;
            stats.max_depth_seen = stats.max_depth_seen.max(path.len());
            if claimed >= self.cfg.probe_states {
                self.state_truncated.store(true, Ordering::Relaxed);
                return;
            }
            if path.len() >= self.cfg.probe_depth {
                self.depth_truncated.store(true, Ordering::Relaxed);
                path.pop();
                continue;
            }
            let order = shuffle(rng, child.enabled());
            stats.expansions += 1;
            stats.transitions_enabled += order.len() as u64;
            stack.push(Frame { sys: child, order });
        }
    }

    fn worker(&self, master: &DetRng) -> CheckStats {
        let mut stats = CheckStats::default();
        loop {
            let idx = self.next_probe.fetch_add(1, Ordering::Relaxed);
            if idx >= self.cfg.probes || self.stop.load(Ordering::Relaxed) {
                return stats;
            }
            let mut rng = master.split(idx);
            self.probe(&mut rng, &mut stats);
        }
    }
}

/// Runs a swarm over `root` and reports. `Violated` verdicts carry the
/// usual minimized counterexample; `Verified` means "no probe found a
/// violation" — consult [`CheckStats::filter_fill_ratio`] and the probe
/// budget flags to judge how much was covered.
pub fn swarm<S>(root: &S, final_ok: &FinalCheck<'_, S>, cfg: &SwarmConfig) -> CheckReport
where
    S: StepOracle + Send + Sync,
{
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.probes >= 1, "need at least one probe");
    let shared = SwarmShared {
        cfg: *cfg,
        final_ok,
        root,
        filter: BitstateFilter::new(cfg.filter_bits),
        next_probe: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        depth_truncated: AtomicBool::new(false),
        state_truncated: AtomicBool::new(false),
        found: Mutex::new(None),
    };
    let master = DetRng::new(cfg.seed);
    let mut stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|_| scope.spawn(|| shared.worker(&master)))
            .collect();
        let mut total = CheckStats::default();
        for h in handles {
            total.absorb(&h.join().expect("swarm worker panicked"));
        }
        total
    });
    // absorb() summed per-worker zeros for these; take the authoritative
    // values from the shared structures.
    stats.unique_states = shared.filter.unique_inserts();
    stats.depth_truncated = shared.depth_truncated.load(Ordering::Relaxed);
    stats.state_truncated = shared.state_truncated.load(Ordering::Relaxed);
    stats.filter_bits = shared.filter.bits();
    stats.filter_bits_set = shared.filter.bits_set();
    let raw = RawExploration {
        found: shared.found.into_inner().unwrap(),
        stats,
        frontier: Vec::new(),
    };
    let report = finish(root, final_ok, raw);
    // A swarm never proves exhaustion; even a quiet run is a bounded claim.
    if matches!(report.verdict, Verdict::Verified) && report.stats.complete() {
        let mut r = report;
        r.stats.state_truncated = true;
        return r;
    }
    report
}

/// Swarm-checks one litmus test under one protocol — the swarm counterpart
/// of [`check_litmus`](crate::check_litmus).
pub fn swarm_litmus(
    lit: &Litmus,
    protocol: Protocol,
    mutation: Option<ProtocolMutation>,
    cfg: &SwarmConfig,
) -> CheckReport {
    let root = crate::litmus_root(lit, protocol, mutation);
    let final_ok = |sys: &System| crate::litmus_final_ok(lit, sys);
    swarm(&root, &final_ok, cfg)
}
