//! Recording: run a VM workload once with the in-system recorder attached
//! and seal the result as a [`Trace`].

use crate::format::Trace;
use dvs_core::system::SimError;
use dvs_core::{System, SystemConfig};
use dvs_kernels::Workload;
use dvs_stats::RunStats;
use std::fmt;
use std::sync::Arc;

/// A recording or replay failure.
#[derive(Debug, Clone)]
pub enum TraceError {
    /// The simulation itself failed.
    Sim(SimError),
    /// The workload's own correctness check rejected the recorded run.
    Check(String),
    /// Replayed state diverged from the recording.
    Validate(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Sim(e) => write!(f, "simulation: {e}"),
            TraceError::Check(m) => write!(f, "workload check: {m}"),
            TraceError::Validate(m) => write!(f, "validation: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Records `workload` under `cfg` and seals the trace. The recorded run's
/// own stats ride along so callers can price the recording overhead.
///
/// The workload's check runs against the recording system before sealing,
/// so a broken run can never become a corpus trace.
///
/// # Errors
///
/// [`TraceError::Sim`] if the run fails, [`TraceError::Check`] if the
/// workload's invariants or coherence checks reject it.
pub fn record(
    name: &str,
    workload: &Workload,
    cfg: SystemConfig,
) -> Result<(Trace, RunStats), TraceError> {
    let mut sys = System::new(cfg, Arc::clone(&workload.layout), workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.preload(addr, value);
    }
    for (i, &(base, bytes)) in workload.pools.iter().enumerate() {
        sys.set_thread_pool(i, base, bytes);
    }
    sys.start_recording();
    let stats = sys.run().map_err(TraceError::Sim)?;
    sys.verify_coherence().map_err(TraceError::Check)?;
    let read = |a| sys.read_word(a);
    (workload.check)(&read).map_err(TraceError::Check)?;
    let rec = sys
        .take_recording(&workload.init)
        .expect("recording was started");
    let trace = Trace {
        name: name.to_owned(),
        recorded_on: cfg.protocol.label().to_owned(),
        layout: Arc::clone(&workload.layout),
        init: workload.init.clone(),
        finals: rec.finals,
        ops: rec.ops.into_iter().map(Arc::new).collect(),
    };
    Ok((trace, stats))
}
