//! `dvst` — trace record/replay command-line front end.
//!
//! ```text
//! dvst record <kernel-token> [--threads N] [--iters N] [--proto P] [-o file]
//!                                              record a kernel trace
//! dvst compose <out.dvst> <a.dvst> <b.dvst>..  stitch phases into one trace
//! dvst mix <seed> <phases> <threads> [-o file] build a seeded workload mix
//! dvst replay <file.dvst> [--proto P] [--compressed] [--oracle] [--seed N]
//!                                              replay and validate a trace
//! dvst show <file.dvst>                        summarize a trace
//! ```
//!
//! `--proto` takes `M`, `DS0`, or `DS` (default `DS`). Kernel tokens are
//! the `dvs-kernels` ones (`tatas:counter`, `nb:fai_counter`, `barrier:tree`,
//! …), plus `composite:<items>:<work>` for the three-phase composite app.
//!
//! Exit codes: 0 clean, 1 replay divergence or failed run, 2 usage.

use dvs_core::{Protocol, SystemConfig};
use dvs_kernels::{build, KernelId, KernelParams, Workload};
use dvs_trace::{
    build_mix, compose, composite, record, replay_oracle, replay_timed, MixSpec, ReplayMode, Trace,
    ORACLE_DELIVERY_BUDGET,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dvst: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Pulls `--flag value` / bare `--flag` options out of `args`.
struct Opts {
    positional: Vec<String>,
    threads: usize,
    iters: u64,
    proto: Protocol,
    out: Option<String>,
    compressed: bool,
    oracle: bool,
    seed: u64,
}

fn parse_proto(tok: &str) -> Result<Protocol, String> {
    match tok {
        "M" | "MESI" | "mesi" => Ok(Protocol::Mesi),
        "DS0" | "ds0" => Ok(Protocol::DeNovoSync0),
        "DS" | "ds" => Ok(Protocol::DeNovoSync),
        other => Err(format!("unknown protocol {other:?} (want M, DS0, or DS)")),
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        threads: 16,
        iters: 0,
        proto: Protocol::DeNovoSync,
        out: None,
        compressed: false,
        oracle: false,
        seed: 1,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                o.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads needs a number")?;
            }
            "--iters" => {
                o.iters = it
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|_| "--iters needs a number")?;
            }
            "--proto" => o.proto = parse_proto(it.next().ok_or("--proto needs a value")?)?,
            "--seed" => {
                o.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs a number")?;
            }
            "-o" | "--out" => o.out = Some(it.next().ok_or("-o needs a path")?.clone()),
            "--compressed" => o.compressed = true,
            "--oracle" => o.oracle = true,
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => o.positional.push(a.clone()),
        }
    }
    Ok(o)
}

/// Resolves a workload token: a `dvs-kernels` kernel token or
/// `composite:<items>:<work>`.
fn workload_for(token: &str, o: &Opts) -> Result<Workload, String> {
    if let Some(rest) = token.strip_prefix("composite:") {
        let (items, work) = rest
            .split_once(':')
            .ok_or("composite token is composite:<items>:<work>")?;
        let items: u64 = items.parse().map_err(|_| "bad composite item count")?;
        let work: u64 = work.parse().map_err(|_| "bad composite work count")?;
        return Ok(composite(o.threads, items, work));
    }
    let id = KernelId::from_token(token).ok_or_else(|| format!("unknown kernel {token:?}"))?;
    let mut params = KernelParams::smoke(o.threads);
    if o.iters > 0 {
        params.iters = o.iters;
    }
    Ok(build(id, &params))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn emit(trace: &Trace, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, trace.render()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} cores, {} ops, fingerprint {:016x}",
                trace.cores(),
                trace.total_ops(),
                trace.fingerprint()
            );
        }
        None => print!("{}", trace.render()),
    }
    Ok(())
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("usage: dvst <record|replay|compose|mix|show> ...".into());
    };
    let o = parse_opts(rest)?;
    match cmd.as_str() {
        "record" => {
            let [token] = o.positional.as_slice() else {
                return Err(
                    "usage: dvst record <kernel-token> [--threads N] [--iters N] [--proto P] [-o file]"
                        .into(),
                );
            };
            let workload = workload_for(token, &o)?;
            let cfg = SystemConfig::small(o.threads, o.proto);
            match record(token, &workload, cfg) {
                Ok((trace, stats)) => {
                    emit(&trace, o.out.as_deref())?;
                    eprintln!("recorded in {} cycles", stats.cycles);
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    eprintln!("record failed: {e}");
                    Ok(ExitCode::from(1))
                }
            }
        }
        "replay" => {
            let [path] = o.positional.as_slice() else {
                return Err(
                    "usage: dvst replay <file.dvst> [--proto P] [--compressed] [--oracle] [--seed N]"
                        .into(),
                );
            };
            let trace = load_trace(path)?;
            let cfg = SystemConfig::small(trace.cores(), o.proto);
            if o.oracle {
                match replay_oracle(&trace, cfg, o.seed, ORACLE_DELIVERY_BUDGET) {
                    Ok(delivered) => {
                        println!(
                            "oracle replay ok: {delivered} deliveries, fingerprint {:016x}",
                            trace.fingerprint()
                        );
                        Ok(ExitCode::SUCCESS)
                    }
                    Err(e) => {
                        eprintln!("oracle replay failed: {e}");
                        Ok(ExitCode::from(1))
                    }
                }
            } else {
                let mode = if o.compressed {
                    ReplayMode::Compressed
                } else {
                    ReplayMode::Faithful
                };
                match replay_timed(&trace, cfg, mode) {
                    Ok(stats) => {
                        println!(
                            "replay ok on {}: {} cycles, fingerprint {:016x}",
                            o.proto,
                            stats.cycles,
                            trace.fingerprint()
                        );
                        Ok(ExitCode::SUCCESS)
                    }
                    Err(e) => {
                        eprintln!("replay failed: {e}");
                        Ok(ExitCode::from(1))
                    }
                }
            }
        }
        "compose" => {
            let [out, phases @ ..] = o.positional.as_slice() else {
                return Err("usage: dvst compose <out.dvst> <phase.dvst>...".into());
            };
            if phases.is_empty() {
                return Err("compose needs at least one phase".into());
            }
            let loaded: Vec<Trace> = phases
                .iter()
                .map(|p| load_trace(p))
                .collect::<Result<_, _>>()?;
            let refs: Vec<&Trace> = loaded.iter().collect();
            let name = out.trim_end_matches(".dvst").to_owned();
            let composed = compose(&name, &refs)?;
            emit(&composed, Some(out))?;
            Ok(ExitCode::SUCCESS)
        }
        "mix" => {
            let [seed, phases, threads] = o.positional.as_slice() else {
                return Err("usage: dvst mix <seed> <phases> <threads> [-o file]".into());
            };
            let spec = MixSpec {
                seed: seed.parse().map_err(|_| "bad seed")?,
                phases: phases.parse().map_err(|_| "bad phase count")?,
                threads: threads.parse().map_err(|_| "bad thread count")?,
            };
            match build_mix(spec) {
                Ok(trace) => {
                    emit(&trace, o.out.as_deref())?;
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    eprintln!("mix failed: {e}");
                    Ok(ExitCode::from(1))
                }
            }
        }
        "show" => {
            let [path] = o.positional.as_slice() else {
                return Err("usage: dvst show <file.dvst>".into());
            };
            let trace = load_trace(path)?;
            println!("name        {}", trace.name);
            println!("recorded on {}", trace.recorded_on);
            println!("cores       {}", trace.cores());
            println!("ops         {}", trace.total_ops());
            println!("init words  {}", trace.init.len());
            println!("final words {}", trace.finals.len());
            println!("fingerprint {:016x}", trace.fingerprint());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
