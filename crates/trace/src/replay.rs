//! Replay: drive a [`Trace`] through the timed or oracle protocol stack
//! and validate the replayed stable state against the recording.

use crate::format::Trace;
use crate::record::TraceError;
use dvs_core::config::DataInvalidation;
use dvs_core::replay::{compress_ops, TraceOp};
use dvs_core::{System, SystemConfig};
use dvs_engine::DetRng;
use dvs_stats::RunStats;
use std::sync::Arc;

/// How faithfully to reproduce recorded think-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Reproduce recorded `Exec` gaps exactly: replayed cycle counts are
    /// comparable across protocols.
    Faithful,
    /// Cap `Exec` gaps at [`COMPRESS_CAP`] cycles: same op order, same
    /// final image, protocol-bound throughput. Use for raw-speed work.
    Compressed,
}

/// `Exec` cap used by [`ReplayMode::Compressed`].
pub const COMPRESS_CAP: u64 = 8;

/// Default delivery budget for oracle-mode replay walks.
pub const ORACLE_DELIVERY_BUDGET: u64 = 2_000_000;

fn streams(trace: &Trace, mode: ReplayMode) -> Vec<Arc<Vec<TraceOp>>> {
    match mode {
        ReplayMode::Faithful => trace.ops.clone(),
        ReplayMode::Compressed => trace
            .ops
            .iter()
            .map(|s| Arc::new(compress_ops(s, COMPRESS_CAP)))
            .collect(),
    }
}

fn check_cores(trace: &Trace, cfg: &SystemConfig) -> Result<(), TraceError> {
    if trace.cores() != cfg.cores {
        return Err(TraceError::Validate(format!(
            "trace drives {} cores but the config has {}",
            trace.cores(),
            cfg.cores
        )));
    }
    Ok(())
}

fn validate_finals(sys: &System, trace: &Trace) -> Result<(), TraceError> {
    for &(w, want) in &trace.finals {
        let got = sys.read_word(w.base());
        if got != want {
            return Err(TraceError::Validate(format!(
                "final state diverged at {:#x}: replay has {got:#x}, recording pinned {want:#x}",
                w.base().raw()
            )));
        }
    }
    Ok(())
}

/// Replays `trace` on the timed simulator under `cfg`, validating every
/// sync value in flight (in-system) and the full final image afterwards.
///
/// # Errors
///
/// [`TraceError::Sim`] on simulator failures (including in-flight value
/// divergence, surfaced as protocol violations),
/// [`TraceError::Validate`] on final-state divergence or a core-count
/// mismatch.
pub fn replay_timed(
    trace: &Trace,
    cfg: SystemConfig,
    mode: ReplayMode,
) -> Result<RunStats, TraceError> {
    check_cores(trace, &cfg)?;
    let mut sys = System::new_replay(cfg, Arc::clone(&trace.layout), streams(trace, mode));
    for &(addr, value) in &trace.init {
        sys.preload(addr, value);
    }
    let stats = sys.run().map_err(TraceError::Sim)?;
    sys.verify_coherence().map_err(TraceError::Check)?;
    validate_finals(&sys, trace)?;
    Ok(stats)
}

/// Replays `trace` through the untimed oracle stack: a seeded random walk
/// over the enabled channels picks delivery orders no timed schedule
/// would produce. Returns the number of deliveries consumed.
///
/// `cfg.data_inv` is forced to static regions (the oracle-mode
/// requirement).
///
/// # Errors
///
/// As [`replay_timed`], plus [`TraceError::Validate`] when the walk
/// exceeds `budget` deliveries or quiesces without halting every core.
pub fn replay_oracle(
    trace: &Trace,
    mut cfg: SystemConfig,
    walk_seed: u64,
    budget: u64,
) -> Result<u64, TraceError> {
    cfg.data_inv = DataInvalidation::StaticRegions;
    check_cores(trace, &cfg)?;
    let mut sys = System::new_oracle_replay(
        cfg,
        Arc::clone(&trace.layout),
        streams(trace, ReplayMode::Compressed),
    );
    for &(addr, value) in &trace.init {
        sys.preload(addr, value);
    }
    sys.oracle_start();
    let mut rng = DetRng::new(walk_seed);
    let mut delivered = 0u64;
    loop {
        if let Some(e) = sys.error() {
            return Err(TraceError::Sim(e.clone()));
        }
        let channels = sys.oracle_channels();
        if channels.is_empty() {
            break;
        }
        let pick = channels[rng.below(channels.len())];
        sys.oracle_deliver(pick);
        delivered += 1;
        if delivered > budget {
            return Err(TraceError::Validate(format!(
                "oracle walk exceeded {budget} deliveries without quiescing"
            )));
        }
    }
    if let Some(e) = sys.error() {
        return Err(TraceError::Sim(e.clone()));
    }
    if !sys.all_halted() {
        return Err(TraceError::Validate(format!(
            "oracle channels drained with cores running: {}",
            sys.deadlock_error()
        )));
    }
    sys.verify_coherence().map_err(TraceError::Check)?;
    validate_finals(&sys, trace)?;
    Ok(delivered)
}
