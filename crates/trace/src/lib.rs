//! dvs-trace: record-once / replay-many workload traces.
//!
//! The record/replay subsystem on top of `dvs-core`'s
//! [`replay`](dvs_core::replay) machinery:
//!
//! * [`format`] — the versioned, line-oriented `.dvst` trace format
//!   (render/parse round-trip, pinned final-state fingerprints).
//! * [`record`] — run a VM workload once with the in-system recorder and
//!   seal a [`Trace`].
//! * [`replay`] — drive a trace through MESI/DS0/DS, timed or oracle,
//!   bypassing the VM front-end, with in-flight sync-value validation and
//!   a final-image comparison against the recording.
//! * [`composite`] — multi-phase VM programs (pipeline → barrier →
//!   lock-free handoff) with tunable ALU think-time.
//! * [`compose`] — stitch recorded phases into one trace with synthetic
//!   join barriers.
//! * [`mix`] — the seeded workload-mix generator: deterministic
//!   server-like churn addressable by `(seed, phases, threads)`.
//!
//! The `dvst` binary exposes record/replay/compose/mix/show as a CLI.

pub mod compose;
pub mod composite;
pub mod format;
pub mod mix;
pub mod record;
pub mod replay;

pub use compose::compose;
pub use composite::composite;
pub use format::{Trace, DVST_VERSION};
pub use mix::{build_mix, MixSpec};
pub use record::{record, TraceError};
pub use replay::{replay_oracle, replay_timed, ReplayMode, COMPRESS_CAP, ORACLE_DELIVERY_BUDGET};
