//! The seeded workload-mix generator: server-like churn stitched from
//! kernels and composite apps, recorded once per phase and composed into
//! one long trace.
//!
//! Everything is a pure function of the [`MixSpec`]: recording is
//! deterministic (seeded simulator), the menu walk is deterministic
//! (seeded [`DetRng`]), so two builds of the same spec yield byte-equal
//! traces — which is what lets `dvs-campaign` address mixes by token and
//! `dvs-serve` cache them content-addressed.

use crate::compose::compose;
use crate::composite::composite;
use crate::format::Trace;
use crate::record::{record, TraceError};
use dvs_core::{Protocol, SystemConfig};
use dvs_engine::DetRng;
use dvs_kernels::{
    build, BarrierKind, KernelId, KernelParams, LockKind, LockedStruct, NonBlocking,
};

/// A workload mix, addressable as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MixSpec {
    /// Seed for the menu walk and parameter jitter.
    pub seed: u64,
    /// Number of phases stitched together.
    pub phases: u8,
    /// Cores (must be a perfect square ≥ 4 for the mesh).
    pub threads: usize,
}

impl MixSpec {
    /// Display name, also used as the trace name (`mix_s7_p3x16`).
    pub fn name(&self) -> String {
        format!("mix_s{}_p{}x{}", self.seed, self.phases, self.threads)
    }
}

/// The phase menu: pattern-diverse, small enough to record quickly.
const MENU: usize = 6;

fn menu_phase(pick: usize, rng: &mut DetRng, threads: usize) -> (String, dvs_kernels::Workload) {
    let mut params = KernelParams::smoke(threads);
    params.iters = rng.range(2, 7);
    params.nonsynch = (20, 20 + rng.range(20, 60));
    let kernel = |k: KernelId, params: &KernelParams| (k.token(), build(k, params));
    match pick {
        0 => kernel(
            KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
            &params,
        ),
        1 => kernel(KernelId::NonBlocking(NonBlocking::FaiCounter), &params),
        2 => kernel(KernelId::Barrier(BarrierKind::Central, false), &params),
        3 => kernel(
            KernelId::Locked(LockedStruct::Counter, LockKind::Array),
            &params,
        ),
        4 => kernel(KernelId::Barrier(BarrierKind::Tree, false), &params),
        _ => {
            let items = rng.range(2, 5);
            let work = rng.range(16, 64);
            (
                format!("composite:{items}:{work}"),
                composite(threads, items, work),
            )
        }
    }
}

/// Builds the mix: records each phase on the canonical config
/// (DeNovoSync, static regions) and composes the recordings.
///
/// # Errors
///
/// [`TraceError`] if a phase recording fails its run or checks, or
/// [`TraceError::Validate`] for an invalid spec.
pub fn build_mix(spec: MixSpec) -> Result<Trace, TraceError> {
    let side = (spec.threads as f64).sqrt() as usize;
    if spec.threads < 4 || side * side != spec.threads {
        return Err(TraceError::Validate(format!(
            "mix threads must be a perfect square >= 4, got {}",
            spec.threads
        )));
    }
    if spec.phases == 0 {
        return Err(TraceError::Validate("mix needs at least one phase".into()));
    }
    let mut rng = DetRng::new(spec.seed);
    let cfg = SystemConfig::small(spec.threads, Protocol::DeNovoSync);
    let mut traces = Vec::new();
    for p in 0..spec.phases {
        let (pname, workload) = menu_phase(rng.below(MENU), &mut rng, spec.threads);
        let (trace, _) = record(&format!("p{p}.{pname}"), &workload, cfg)?;
        traces.push(trace);
    }
    let refs: Vec<&Trace> = traces.iter().collect();
    compose(&spec.name(), &refs).map_err(TraceError::Validate)
}
