//! The versioned, line-oriented `.dvst` trace format.
//!
//! A trace file is self-contained: it carries the memory layout (regions
//! and segments), the preloaded image, the per-core op streams, and the
//! pinned *final* image of every word the recorded run touched. Replay on
//! any protocol validates against the finals, and
//! [`Trace::fingerprint`] folds them into one pinned number.
//!
//! Like `.dvsf`, the format is plain text, one record per line, designed
//! to diff well and survive hand edits in a corpus:
//!
//! ```text
//! dvst 1
//! name tatas_counter
//! on DS
//! cores 4
//! region 0 sync
//! seg 0 64 0 counter
//! init 0 6
//! final 0 18
//! core 0 5
//! ex 42
//! rmw 0 fai 1 0 0 6
//! fence
//! halt
//! ...
//! ```
//!
//! Addresses and values are hex (no `0x` prefix); counts and ordinals are
//! decimal. Segment and region names come last on their lines so they may
//! contain spaces.

use dvs_core::replay::TraceOp;
use dvs_mem::{AccessKind, Addr, MemoryLayout, Region, RmwOp, Segment, WordAddr};
use dvs_vm::isa::Cond;
use dvs_vm::{MemRequest, SpinCond};
use std::fmt::Write as _;
use std::sync::Arc;

/// Format version emitted and accepted by this build.
pub const DVST_VERSION: u32 = 1;

/// FNV-1a offset basis (matches `dvs_campaign::FNV_OFFSET`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A sealed, replayable trace: layout, preloaded image, per-core op
/// streams, and the recorded run's pinned final image.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Short identifier (no newlines).
    pub name: String,
    /// Protocol label the trace was recorded on (informational only — a
    /// trace replays on any protocol).
    pub recorded_on: String,
    /// The memory layout the workload was built against (regions drive
    /// DeNovo self-invalidation during replay).
    pub layout: Arc<MemoryLayout>,
    /// Words preloaded before the run, in workload order.
    pub init: Vec<(Addr, u64)>,
    /// `(word, value)` for every word the recorded run touched, sorted by
    /// address — the pinned stable state replay must reproduce.
    pub finals: Vec<(WordAddr, u64)>,
    /// One ordered op stream per core.
    pub ops: Vec<Arc<Vec<TraceOp>>>,
}

impl Trace {
    /// Number of cores the trace drives.
    pub fn cores(&self) -> usize {
        self.ops.len()
    }

    /// Total recorded ops across all cores.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(|s| s.len()).sum()
    }

    /// The pinned stable-state fingerprint: FNV-1a over the sorted final
    /// image. Protocol- and schedule-independent by construction.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &(w, v) in &self.finals {
            h = fnv1a_u64(h, w.base().raw());
            h = fnv1a_u64(h, v);
        }
        h
    }

    /// Renders the trace as `.dvst` text. [`Trace::parse`] inverts it.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "dvst {DVST_VERSION}");
        let _ = writeln!(s, "name {}", self.name);
        let _ = writeln!(s, "on {}", self.recorded_on);
        let _ = writeln!(s, "cores {}", self.ops.len());
        for r in 0..self.layout.regions() {
            let name = self.layout.region_name(Region(r as u16)).unwrap_or("?");
            let _ = writeln!(s, "region {r} {name}");
        }
        for seg in self.layout.segments() {
            let _ = writeln!(
                s,
                "seg {:x} {} {} {}",
                seg.base.raw(),
                seg.bytes,
                seg.region.0,
                seg.name
            );
        }
        for &(a, v) in &self.init {
            let _ = writeln!(s, "init {:x} {v:x}", a.raw());
        }
        for &(w, v) in &self.finals {
            let _ = writeln!(s, "final {:x} {v:x}", w.base().raw());
        }
        for (i, ops) in self.ops.iter().enumerate() {
            let _ = writeln!(s, "core {i} {}", ops.len());
            for op in ops.iter() {
                render_op(&mut s, op);
            }
        }
        s
    }

    /// Parses `.dvst` text produced by [`Trace::render`] (or hand-written
    /// in the same shape).
    ///
    /// # Errors
    ///
    /// A message naming the first offending line.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty trace")?;
        let version: u32 = first
            .strip_prefix("dvst ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("line 1: expected `dvst <version>`, got `{first}`"))?;
        if version != DVST_VERSION {
            return Err(format!("unsupported dvst version {version}"));
        }
        let mut name = String::new();
        let mut recorded_on = String::new();
        let mut cores: Option<usize> = None;
        let mut region_names: Vec<String> = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut init = Vec::new();
        let mut finals = Vec::new();
        let mut ops: Vec<Vec<TraceOp>> = Vec::new();
        let mut current: Option<(usize, usize)> = None; // (core, remaining)
        for (ln, line) in lines {
            let ln = ln + 1; // 1-based
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| format!("line {ln}: {m}");
            if let Some((core, left)) = &mut current {
                if *left > 0 {
                    let op = parse_op(line).map_err(&err)?;
                    ops[*core].push(op);
                    *left -= 1;
                    continue;
                }
                current = None;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "name" => name = rest.to_owned(),
                "on" => recorded_on = rest.to_owned(),
                "cores" => {
                    let n: usize = rest
                        .parse()
                        .map_err(|_| err(format!("bad core count `{rest}`")))?;
                    cores = Some(n);
                    ops = vec![Vec::new(); n];
                }
                "region" => {
                    let (idx, rname) = rest
                        .split_once(' ')
                        .ok_or_else(|| err("expected `region <idx> <name>`".into()))?;
                    let idx: usize = idx
                        .parse()
                        .map_err(|_| err(format!("bad region index `{idx}`")))?;
                    if idx != region_names.len() {
                        return Err(err(format!(
                            "region {idx} out of order (expected {})",
                            region_names.len()
                        )));
                    }
                    region_names.push(rname.to_owned());
                }
                "seg" => {
                    let mut it = rest.splitn(4, ' ');
                    let base = parse_hex(it.next().unwrap_or("")).map_err(&err)?;
                    let bytes: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad segment size".into()))?;
                    let region: u16 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("bad segment region".into()))?;
                    let sname = it
                        .next()
                        .ok_or_else(|| err("missing segment name".into()))?;
                    segments.push(Segment {
                        name: sname.to_owned(),
                        base: Addr::new(base),
                        bytes,
                        region: Region(region),
                    });
                }
                "init" => {
                    let (a, v) = parse_pair_hex(rest).map_err(&err)?;
                    init.push((Addr::new(a), v));
                }
                "final" => {
                    let (a, v) = parse_pair_hex(rest).map_err(&err)?;
                    finals.push((Addr::new(a).word(), v));
                }
                "core" => {
                    let (idx, n) = rest
                        .split_once(' ')
                        .ok_or_else(|| err("expected `core <idx> <nops>`".into()))?;
                    let idx: usize = idx
                        .parse()
                        .map_err(|_| err(format!("bad core index `{idx}`")))?;
                    let n: usize = n.parse().map_err(|_| err(format!("bad op count `{n}`")))?;
                    if idx >= ops.len() {
                        return Err(err(format!("core {idx} beyond declared count")));
                    }
                    current = Some((idx, n));
                }
                other => return Err(err(format!("unknown record `{other}`"))),
            }
        }
        if let Some((core, left)) = current {
            if left > 0 {
                return Err(format!("core {core}: {left} ops missing at end of file"));
            }
        }
        let cores = cores.ok_or("missing `cores` record")?;
        if ops.len() != cores {
            return Err(format!("declared {cores} cores, found {}", ops.len()));
        }
        Ok(Trace {
            name,
            recorded_on,
            layout: Arc::new(MemoryLayout::from_parts(segments, region_names)),
            init,
            finals,
            ops: ops.into_iter().map(Arc::new).collect(),
        })
    }
}

fn cond_token(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Lt => "lt",
        Cond::Ge => "ge",
    }
}

fn parse_cond(s: &str) -> Result<Cond, String> {
    match s {
        "eq" => Ok(Cond::Eq),
        "ne" => Ok(Cond::Ne),
        "lt" => Ok(Cond::Lt),
        "ge" => Ok(Cond::Ge),
        other => Err(format!("unknown spin condition `{other}`")),
    }
}

fn render_op(s: &mut String, op: &TraceOp) {
    match *op {
        TraceOp::Exec { cycles } => {
            let _ = writeln!(s, "ex {cycles}");
        }
        TraceOp::Fence => {
            let _ = writeln!(s, "fence");
        }
        TraceOp::SelfInv(r) => {
            let _ = writeln!(s, "inv {}", r.0);
        }
        TraceOp::Halt => {
            let _ = writeln!(s, "halt");
        }
        TraceOp::Mem {
            req,
            dep,
            rwait,
            result,
        } => {
            let a = req.addr.raw();
            match (req.kind, req.spin) {
                (AccessKind::DataLoad, _) => {
                    let _ = writeln!(s, "ld {a:x}");
                }
                (AccessKind::DataStore { value }, _) => {
                    let _ = writeln!(s, "st {a:x} {value:x}");
                }
                (AccessKind::SyncLoad, None) => {
                    let _ = writeln!(s, "lds {a:x} {dep} {}", hex_opt(result));
                }
                (AccessKind::SyncLoad, Some(spin)) => {
                    let _ = writeln!(
                        s,
                        "sp {a:x} {} {:x} {dep} {}",
                        cond_token(spin.cond),
                        spin.rhs,
                        hex_opt(result)
                    );
                }
                (AccessKind::SyncStore { value }, _) => {
                    let _ = writeln!(s, "sts {a:x} {value:x} {dep} {rwait}");
                }
                (AccessKind::SyncRmw(op), _) => {
                    let body = match op {
                        RmwOp::Cas { expected, new } => format!("cas {expected:x} {new:x}"),
                        RmwOp::Fai { delta } => format!("fai {delta:x}"),
                        RmwOp::Swap { new } => format!("swap {new:x}"),
                        RmwOp::Tas => "tas".to_owned(),
                    };
                    let _ = writeln!(s, "rmw {a:x} {body} {dep} {rwait} {}", hex_opt(result));
                }
            }
        }
    }
}

fn hex_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => format!("{v:x}"),
        None => "-".to_owned(),
    }
}

fn parse_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|_| format!("bad hex value `{s}`"))
}

fn parse_hex_opt(s: &str) -> Result<Option<u64>, String> {
    if s == "-" {
        Ok(None)
    } else {
        parse_hex(s).map(Some)
    }
}

fn parse_pair_hex(rest: &str) -> Result<(u64, u64), String> {
    let (a, v) = rest
        .split_once(' ')
        .ok_or_else(|| format!("expected `<addr> <value>`, got `{rest}`"))?;
    Ok((parse_hex(a)?, parse_hex(v)?))
}

fn mem(addr: u64, kind: AccessKind, spin: Option<SpinCond>) -> MemRequest {
    MemRequest {
        addr: Addr::new(addr),
        kind,
        dst: None,
        spin,
    }
}

fn parse_op(line: &str) -> Result<TraceOp, String> {
    let mut it = line.split(' ');
    let key = it.next().unwrap_or("");
    let mut next = |what: &str| {
        it.next()
            .ok_or_else(|| format!("`{key}`: missing {what}"))
            .map(|s| s.to_owned())
    };
    let op = match key {
        "ex" => TraceOp::Exec {
            cycles: next("cycle count")?
                .parse()
                .map_err(|_| "bad cycle count".to_owned())?,
        },
        "fence" => TraceOp::Fence,
        "inv" => TraceOp::SelfInv(Region(
            next("region")?
                .parse()
                .map_err(|_| "bad region index".to_owned())?,
        )),
        "halt" => TraceOp::Halt,
        "ld" => TraceOp::Mem {
            req: mem(parse_hex(&next("address")?)?, AccessKind::DataLoad, None),
            dep: 0,
            rwait: 0,
            result: None,
        },
        "st" => {
            let a = parse_hex(&next("address")?)?;
            let value = parse_hex(&next("value")?)?;
            TraceOp::Mem {
                req: mem(a, AccessKind::DataStore { value }, None),
                dep: 0,
                rwait: 0,
                result: None,
            }
        }
        "lds" => {
            let a = parse_hex(&next("address")?)?;
            let dep = next("dep")?.parse().map_err(|_| "bad dep".to_owned())?;
            let result = parse_hex_opt(&next("result")?)?;
            TraceOp::Mem {
                req: mem(a, AccessKind::SyncLoad, None),
                dep,
                rwait: 0,
                result,
            }
        }
        "sp" => {
            let a = parse_hex(&next("address")?)?;
            let cond = parse_cond(&next("condition")?)?;
            let rhs = parse_hex(&next("rhs")?)?;
            let dep = next("dep")?.parse().map_err(|_| "bad dep".to_owned())?;
            let result = parse_hex_opt(&next("result")?)?;
            TraceOp::Mem {
                req: mem(a, AccessKind::SyncLoad, Some(SpinCond { cond, rhs })),
                dep,
                rwait: 0,
                result,
            }
        }
        "sts" => {
            let a = parse_hex(&next("address")?)?;
            let value = parse_hex(&next("value")?)?;
            let dep = next("dep")?.parse().map_err(|_| "bad dep".to_owned())?;
            let rwait = next("rwait")?.parse().map_err(|_| "bad rwait".to_owned())?;
            TraceOp::Mem {
                req: mem(a, AccessKind::SyncStore { value }, None),
                dep,
                rwait,
                result: None,
            }
        }
        "rmw" => {
            let a = parse_hex(&next("address")?)?;
            let op = match next("rmw kind")?.as_str() {
                "cas" => RmwOp::Cas {
                    expected: parse_hex(&next("expected")?)?,
                    new: parse_hex(&next("new")?)?,
                },
                "fai" => RmwOp::Fai {
                    delta: parse_hex(&next("delta")?)?,
                },
                "swap" => RmwOp::Swap {
                    new: parse_hex(&next("new")?)?,
                },
                "tas" => RmwOp::Tas,
                other => return Err(format!("unknown rmw kind `{other}`")),
            };
            let dep = next("dep")?.parse().map_err(|_| "bad dep".to_owned())?;
            let rwait = next("rwait")?.parse().map_err(|_| "bad rwait".to_owned())?;
            let result = parse_hex_opt(&next("result")?)?;
            TraceOp::Mem {
                req: mem(a, AccessKind::SyncRmw(op), None),
                dep,
                rwait,
                result,
            }
        }
        other => return Err(format!("unknown op `{other}`")),
    };
    if it.next().is_some() {
        return Err(format!("`{key}`: trailing fields"));
    }
    Ok(op)
}
