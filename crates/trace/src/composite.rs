//! Composite multi-phase VM programs: pipeline → barrier → lock-free
//! handoff in one workload.
//!
//! This is the composite-app layer's VM-side half: a single program per
//! core that chains three qualitatively different synchronization phases,
//! with tunable ALU "think time" between sync points. Dense local compute
//! makes it the honest baseline for measuring replay speedup — the VM
//! pays per-instruction stepping for every ALU op, replay collapses each
//! gap into one `Exec` record.
//!
//! Phases (all cores participate):
//!
//! 1. **Ring pipeline** — a token circulates core 0 → 1 → … → n−1 → 0 for
//!    `items` rounds; each hop is a sync store consumed by an exact-value
//!    spin.
//! 2. **Central barrier** — fetch-and-increment plus a spin on the full
//!    count.
//! 3. **Lock-free handoff** — cores pair up (2p, 2p+1): the producer data-
//!    stores an item, fences, and publishes a sync flag; the consumer
//!    spins on the flag (≥, the paper's arbitrary-sync shape), loads the
//!    item, and asserts its value in-program.

use dvs_kernels::Workload;
use dvs_mem::{Addr, LayoutBuilder, WORD_BYTES};
use dvs_vm::isa::{Cond, Reg};
use dvs_vm::{Asm, Program};

/// Registers: keep clear of Reg(0) (conventionally zero elsewhere).
const R_ADDR: Reg = Reg(1);
const R_K: Reg = Reg(2);
const R_ITEMS: Reg = Reg(3);
const R_ACC: Reg = Reg(4);
const R_WORK: Reg = Reg(5);
const R_ONE: Reg = Reg(6);
const R_VAL: Reg = Reg(7);
const R_RHS: Reg = Reg(8);
const R_OFF: Reg = Reg(9);
const R_GOT: Reg = Reg(10);
const R_ZERO: Reg = Reg(11);

/// Emits `work` iterations of a 3-instruction ALU loop.
fn alu_work(a: &mut Asm, work: u64) {
    if work == 0 {
        return;
    }
    a.movi(R_WORK, work);
    let top = a.here();
    let done = a.label();
    a.beq(R_WORK, R_ZERO, done);
    a.addi(R_ACC, R_ACC, 3);
    a.addi(R_WORK, R_WORK, -1);
    a.jmp(top);
    a.bind(done);
}

/// Builds the three-phase composite workload for `threads` cores.
/// `items` is the per-phase item count, `work` the ALU iterations between
/// sync points.
///
/// # Panics
///
/// Panics if `threads < 2`.
pub fn composite(threads: usize, items: u64, work: u64) -> Workload {
    assert!(threads >= 2, "composite needs at least two cores");
    let n = threads;
    let pairs = n / 2;
    let mut b = LayoutBuilder::new();
    let sync = b.region("sync");
    let data_r = b.region("data");
    let slots: Vec<Addr> = (0..n)
        .map(|i| b.sync_var(&format!("slot{i}"), sync, true))
        .collect();
    let bar = b.sync_var("bar", sync, true);
    let flags: Vec<Addr> = (0..pairs)
        .map(|p| b.sync_var(&format!("flag{p}"), sync, true))
        .collect();
    let data = b.segment("data", (pairs as u64 * items).max(1) * WORD_BYTES, data_r);
    let layout = b.build();

    let programs: Vec<Program> = (0..n)
        .map(|i| {
            let mut a = Asm::new(&format!("composite{i}"));
            a.movi(R_ZERO, 0);
            a.movi(R_ONE, 1);
            a.movi(R_ITEMS, items);
            a.movi(R_ACC, 0);

            // Phase 1: ring pipeline.
            a.movi(R_K, 0);
            let ring_top = a.here();
            let ring_done = a.label();
            a.addi(R_K, R_K, 1);
            a.blt(R_ITEMS, R_K, ring_done);
            if i == 0 {
                alu_work(&mut a, work);
                a.movi(R_ADDR, slots[1 % n].raw());
                a.stores(R_K, R_ADDR, 0);
                a.movi(R_ADDR, slots[0].raw());
                a.spin_until(R_VAL, R_ADDR, 0, Cond::Eq, R_K);
            } else {
                a.movi(R_ADDR, slots[i].raw());
                a.spin_until(R_VAL, R_ADDR, 0, Cond::Eq, R_K);
                alu_work(&mut a, work);
                a.movi(R_ADDR, slots[(i + 1) % n].raw());
                a.stores(R_K, R_ADDR, 0);
            }
            a.jmp(ring_top);
            a.bind(ring_done);

            // Phase 2: central barrier.
            a.movi(R_ADDR, bar.raw());
            a.fai(R_VAL, R_ADDR, 0, R_ONE);
            a.movi(R_RHS, n as u64);
            a.spin_until(R_VAL, R_ADDR, 0, Cond::Ge, R_RHS);

            // Phase 3: paired lock-free handoff (an unpaired last core
            // skips straight to halt).
            let p = i / 2;
            if p < pairs {
                let base = data.raw() + p as u64 * items * WORD_BYTES;
                a.movi(R_K, 0);
                let h_top = a.here();
                let h_done = a.label();
                a.addi(R_K, R_K, 1);
                a.blt(R_ITEMS, R_K, h_done);
                // item value = 3k + p
                a.movi(R_RHS, 3);
                a.mul(R_VAL, R_K, R_RHS);
                a.movi(R_RHS, p as u64);
                a.add(R_VAL, R_VAL, R_RHS);
                // item address = base + (k-1)*8
                a.addi(R_OFF, R_K, -1);
                a.movi(R_RHS, WORD_BYTES);
                a.mul(R_OFF, R_OFF, R_RHS);
                a.movi(R_ADDR, base);
                a.add(R_ADDR, R_ADDR, R_OFF);
                if i % 2 == 0 {
                    // Producer: data store, fence, publish.
                    a.store(R_VAL, R_ADDR, 0);
                    alu_work(&mut a, work);
                    a.fence();
                    a.movi(R_ADDR, flags[p].raw());
                    a.stores(R_K, R_ADDR, 0);
                } else {
                    // Consumer: acquire, load, verify in-program.
                    a.movi(R_ADDR, flags[p].raw());
                    a.spin_until(R_GOT, R_ADDR, 0, Cond::Ge, R_K);
                    a.movi(R_ADDR, base);
                    a.add(R_ADDR, R_ADDR, R_OFF);
                    a.load(R_GOT, R_ADDR, 0);
                    a.assert_cond(Cond::Eq, R_GOT, R_VAL, "handoff item corrupted");
                    alu_work(&mut a, work);
                }
                a.jmp(h_top);
                a.bind(h_done);
            }
            a.halt();
            a.build()
        })
        .collect();

    let slots_c = slots.clone();
    let flags_c = flags.clone();
    let check = move |read: &dyn Fn(Addr) -> u64| -> Result<(), String> {
        for (j, &s) in slots_c.iter().enumerate() {
            let got = read(s);
            if got != items {
                return Err(format!("slot{j} = {got}, expected {items}"));
            }
        }
        let got = read(bar);
        if got != n as u64 {
            return Err(format!("barrier count = {got}, expected {n}"));
        }
        for (p, &f) in flags_c.iter().enumerate() {
            let got = read(f);
            if got != items {
                return Err(format!("flag{p} = {got}, expected {items}"));
            }
            for k in 1..=items {
                let a =
                    Addr::new(data.raw() + p as u64 * items * WORD_BYTES + (k - 1) * WORD_BYTES);
                let got = read(a);
                let want = 3 * k + p as u64;
                if got != want {
                    return Err(format!("data[{p}][{k}] = {got}, expected {want}"));
                }
            }
        }
        Ok(())
    };
    Workload::new(layout, programs, Vec::new(), Vec::new(), Box::new(check))
}
