//! Trace-level composition: stitch recorded phases into one multi-phase
//! trace with synthetic join barriers between them.
//!
//! Each phase's address space is shifted by a uniform per-phase delta so
//! segments never collide; recorded dependency ordinals, operand values,
//! and results ride along verbatim (per-word sync histories are untouched
//! by a uniform shift). Between phases every core runs a synthetic join:
//! `fence; fai(join); spin join == n` — expressed directly as trace ops
//! with exact ordinals, so the composed trace is a valid recording of a
//! program that never ran.
//!
//! Note on pointer-shaped data: recorded *values* are not shifted, so a
//! word that held an address in the original run still holds the
//! pre-shift address in the composed trace. Replay never interprets
//! loaded values (there is no register file), so this is harmless — but
//! the composed final image documents the original pointers, not shifted
//! ones.

use crate::format::Trace;
use dvs_core::replay::TraceOp;
use dvs_mem::layout::Region;
use dvs_mem::{Addr, MemoryLayout, Segment, WordAddr, LINE_BYTES};
use dvs_vm::isa::Cond;
use dvs_vm::{MemRequest, SpinCond};
use std::collections::BTreeMap;
use std::sync::Arc;

fn shift_addr(a: Addr, delta: u64) -> Addr {
    Addr::new(a.raw() + delta)
}

fn shift_op(op: &TraceOp, delta: u64, region_off: u16) -> TraceOp {
    match *op {
        TraceOp::Mem {
            req,
            dep,
            rwait,
            result,
        } => TraceOp::Mem {
            req: MemRequest {
                addr: shift_addr(req.addr, delta),
                ..req
            },
            dep,
            rwait,
            result,
        },
        TraceOp::SelfInv(r) => TraceOp::SelfInv(Region(region_off + r.0)),
        other => other,
    }
}

/// Composes `phases` (in order) into one trace named `name`.
///
/// # Errors
///
/// If `phases` is empty or the phases drive different core counts.
pub fn compose(name: &str, phases: &[&Trace]) -> Result<Trace, String> {
    let Some(first) = phases.first() else {
        return Err("compose needs at least one phase".into());
    };
    let n = first.cores();
    for (k, p) in phases.iter().enumerate() {
        if p.cores() != n {
            return Err(format!(
                "phase {k} ({}) drives {} cores, phase 0 drives {n}",
                p.name,
                p.cores()
            ));
        }
    }
    // A uniform per-phase shift: big enough that no phase's segments can
    // reach into the next slot, line-aligned.
    let span = phases
        .iter()
        .flat_map(|p| p.layout.segments())
        .map(|s| s.base.raw() + s.bytes)
        .max()
        .unwrap_or(0);
    let stride = (span + LINE_BYTES).next_multiple_of(0x1000).max(0x1000);

    let mut region_names: Vec<String> = Vec::new();
    let mut segments: Vec<Segment> = Vec::new();
    let mut init: Vec<(Addr, u64)> = Vec::new();
    let mut finals: BTreeMap<WordAddr, u64> = BTreeMap::new();
    let mut streams: Vec<Vec<TraceOp>> = vec![Vec::new(); n];

    let joins = phases.len().saturating_sub(1);
    let join_base = phases.len() as u64 * stride;
    let join_word = |b: usize| Addr::new(join_base + b as u64 * LINE_BYTES);

    for (k, phase) in phases.iter().enumerate() {
        let delta = k as u64 * stride;
        let region_off = region_names.len() as u16;
        for r in 0..phase.layout.regions() {
            let rname = phase.layout.region_name(Region(r as u16)).unwrap_or("?");
            region_names.push(format!("p{k}.{rname}"));
        }
        for seg in phase.layout.segments() {
            segments.push(Segment {
                name: format!("p{k}.{}", seg.name),
                base: shift_addr(seg.base, delta),
                bytes: seg.bytes,
                region: Region(region_off + seg.region.0),
            });
        }
        for &(a, v) in &phase.init {
            init.push((shift_addr(a, delta), v));
        }
        for &(w, v) in &phase.finals {
            finals.insert(shift_addr(w.base(), delta).word(), v);
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            let ops = &phase.ops[i];
            let body = match ops.last() {
                Some(TraceOp::Halt) => &ops[..ops.len() - 1],
                _ => &ops[..],
            };
            stream.extend(body.iter().map(|op| shift_op(op, delta, region_off)));
            if k < joins {
                let j = join_word(k);
                stream.push(TraceOp::Fence);
                stream.push(TraceOp::Mem {
                    req: MemRequest {
                        addr: j,
                        kind: dvs_mem::AccessKind::SyncRmw(dvs_mem::RmwOp::Fai { delta: 1 }),
                        dst: None,
                        spin: None,
                    },
                    dep: i as u32,
                    rwait: 0,
                    result: Some(i as u64),
                });
                stream.push(TraceOp::Mem {
                    req: MemRequest {
                        addr: j,
                        kind: dvs_mem::AccessKind::SyncLoad,
                        dst: None,
                        spin: Some(SpinCond {
                            cond: Cond::Eq,
                            rhs: n as u64,
                        }),
                    },
                    dep: n as u32,
                    rwait: 0,
                    result: Some(n as u64),
                });
            } else {
                stream.push(TraceOp::Halt);
            }
        }
    }
    if joins > 0 {
        region_names.push("compose".to_owned());
        let jr = Region((region_names.len() - 1) as u16);
        segments.push(Segment {
            name: "compose.join".to_owned(),
            base: Addr::new(join_base),
            bytes: joins as u64 * LINE_BYTES,
            region: jr,
        });
        for b in 0..joins {
            finals.insert(join_word(b).word(), n as u64);
        }
    }
    Ok(Trace {
        name: name.to_owned(),
        recorded_on: format!("composed({})", phases.len()),
        layout: Arc::new(MemoryLayout::from_parts(segments, region_names)),
        init,
        finals: finals.into_iter().collect(),
        ops: streams.into_iter().map(Arc::new).collect(),
    })
}
