//! Integration tests: record/replay round trips across all three
//! protocols (timed and oracle), `.dvst` format round trips, composition,
//! mix determinism, and replay of the committed corpus.

use dvs_core::replay::TraceOp;
use dvs_core::{Protocol, SystemConfig};
use dvs_kernels::{build, BarrierKind, KernelId, KernelParams, LockKind, LockedStruct};
use dvs_trace::{
    build_mix, compose, composite, record, replay_oracle, replay_timed, MixSpec, ReplayMode, Trace,
    TraceError, ORACLE_DELIVERY_BUDGET,
};
use std::sync::Arc;

const THREADS: usize = 4;

fn cfg(proto: Protocol) -> SystemConfig {
    SystemConfig::small(THREADS, proto)
}

fn record_kernel(id: KernelId) -> Trace {
    let mut params = KernelParams::smoke(THREADS);
    params.iters = 4;
    let workload = build(id, &params);
    let (trace, _) =
        record(&id.token(), &workload, cfg(Protocol::DeNovoSync)).expect("recording must succeed");
    trace
}

/// Replays `trace` on every protocol, timed and oracle, and checks the
/// final image validates everywhere (validation happens inside replay).
fn replay_everywhere(trace: &Trace) {
    for proto in Protocol::ALL {
        for mode in [ReplayMode::Faithful, ReplayMode::Compressed] {
            replay_timed(trace, cfg(proto), mode)
                .unwrap_or_else(|e| panic!("{} timed replay on {proto}: {e}", trace.name));
        }
    }
    for seed in [1, 99] {
        replay_oracle(
            trace,
            cfg(Protocol::DeNovoSync),
            seed,
            ORACLE_DELIVERY_BUDGET,
        )
        .unwrap_or_else(|e| panic!("{} oracle replay (seed {seed}): {e}", trace.name));
    }
}

#[test]
fn tatas_counter_round_trip() {
    let trace = record_kernel(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas));
    assert!(trace.total_ops() > 0);
    replay_everywhere(&trace);
}

#[test]
fn barrier_round_trip() {
    let trace = record_kernel(KernelId::Barrier(BarrierKind::Central, false));
    replay_everywhere(&trace);
}

#[test]
fn composite_round_trip() {
    let workload = composite(THREADS, 3, 24);
    let (trace, _) =
        record("composite:3:24", &workload, cfg(Protocol::DeNovoSync)).expect("record");
    replay_everywhere(&trace);
}

#[test]
fn recording_protocol_does_not_matter() {
    // A trace recorded on MESI replays to the same finals as one recorded
    // on DS: the stable state is protocol-independent.
    let mut params = KernelParams::smoke(THREADS);
    params.iters = 4;
    let workload = build(
        KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
        &params,
    );
    let (on_mesi, _) = record("t", &workload, cfg(Protocol::Mesi)).expect("record on MESI");
    let (on_ds, _) = record("t", &workload, cfg(Protocol::DeNovoSync)).expect("record on DS");
    assert_eq!(on_mesi.fingerprint(), on_ds.fingerprint());
    replay_everywhere(&on_mesi);
}

#[test]
fn format_round_trip_is_identity() {
    let trace = record_kernel(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas));
    let text = trace.render();
    let parsed = Trace::parse(&text).expect("parse rendered trace");
    assert_eq!(parsed.render(), text, "render∘parse∘render must be stable");
    assert_eq!(parsed.fingerprint(), trace.fingerprint());
    assert_eq!(parsed.cores(), trace.cores());
    assert_eq!(parsed.init, trace.init);
    assert_eq!(parsed.finals, trace.finals);
    for (a, b) in parsed.ops.iter().zip(trace.ops.iter()) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
    // The parsed trace is replayable (layout survived the round trip).
    replay_timed(&parsed, cfg(Protocol::DeNovoSync), ReplayMode::Compressed).expect("replay");
}

#[test]
fn parse_rejects_garbage() {
    assert!(Trace::parse("").is_err());
    assert!(Trace::parse("dvst 99\n").is_err());
    let err = Trace::parse("dvst 1\ncores 1\nbogus line\n").unwrap_err();
    assert!(err.contains("line 3"), "error should name the line: {err}");
    let err = Trace::parse("dvst 1\ncores 1\ncore 0 2\nhalt\n").unwrap_err();
    assert!(err.contains("missing"), "truncated stream: {err}");
}

#[test]
fn tampered_result_is_caught_in_flight() {
    let trace = record_kernel(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas));
    let mut tampered = trace.clone();
    // Flip the recorded result of the first validated sync op we find.
    'outer: for stream in &mut tampered.ops {
        let mut ops = stream.as_ref().clone();
        for op in &mut ops {
            if let TraceOp::Mem {
                result: Some(v), ..
            } = op
            {
                *v ^= 0x1;
                *stream = Arc::new(ops);
                break 'outer;
            }
        }
    }
    let err = replay_timed(&tampered, cfg(Protocol::DeNovoSync), ReplayMode::Faithful)
        .expect_err("tampered result must fail validation");
    let msg = err.to_string();
    assert!(
        msg.contains("replay"),
        "divergence should be reported as a replay violation: {msg}"
    );
}

#[test]
fn tampered_final_is_caught_after_the_run() {
    let trace = record_kernel(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas));
    let mut tampered = trace.clone();
    let last = tampered.finals.len() - 1;
    tampered.finals[last].1 ^= 0xff;
    match replay_timed(&tampered, cfg(Protocol::DeNovoSync), ReplayMode::Faithful) {
        Err(TraceError::Validate(m)) => assert!(m.contains("diverged"), "{m}"),
        // The tampered word may also be an in-flight-validated sync word.
        Err(other) => panic!("expected Validate, got {other}"),
        Ok(_) => panic!("tampered finals must not validate"),
    }
}

#[test]
fn core_count_mismatch_is_rejected() {
    let trace = record_kernel(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas));
    let bad = SystemConfig::small(16, Protocol::DeNovoSync);
    assert!(matches!(
        replay_timed(&trace, bad, ReplayMode::Faithful),
        Err(TraceError::Validate(_))
    ));
}

#[test]
fn composed_trace_replays_all_phases() {
    let a = record_kernel(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas));
    let b = {
        let workload = composite(THREADS, 2, 16);
        record("composite:2:16", &workload, cfg(Protocol::DeNovoSync))
            .expect("record")
            .0
    };
    let c = record_kernel(KernelId::Barrier(BarrierKind::Central, false));
    let composed = compose("three_phase", &[&a, &b, &c]).expect("compose");
    assert_eq!(composed.cores(), THREADS);
    assert!(composed.total_ops() > a.total_ops() + b.total_ops() + c.total_ops());
    replay_everywhere(&composed);
    // Format round trip survives composition (join segment, prefixed
    // regions, shifted addresses).
    let parsed = Trace::parse(&composed.render()).expect("parse composed");
    assert_eq!(parsed.render(), composed.render());
    replay_timed(&parsed, cfg(Protocol::Mesi), ReplayMode::Compressed).expect("replay parsed");
}

#[test]
fn compose_rejects_mismatched_core_counts() {
    let a = record_kernel(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas));
    let mut params = KernelParams::smoke(16);
    params.iters = 2;
    let w = build(
        KernelId::Locked(LockedStruct::Counter, LockKind::Tatas),
        &params,
    );
    let (b, _) = record("wide", &w, SystemConfig::small(16, Protocol::DeNovoSync)).expect("rec");
    assert!(compose("bad", &[&a, &b]).is_err());
}

#[test]
fn mix_is_deterministic_and_replayable() {
    let spec = MixSpec {
        seed: 11,
        phases: 2,
        threads: THREADS,
    };
    let one = build_mix(spec).expect("mix");
    let two = build_mix(spec).expect("mix again");
    assert_eq!(
        one.render(),
        two.render(),
        "same spec must yield byte-equal traces"
    );
    assert_eq!(one.name, spec.name());
    replay_timed(&one, cfg(Protocol::Mesi), ReplayMode::Compressed).expect("mix on MESI");
    replay_timed(&one, cfg(Protocol::DeNovoSync), ReplayMode::Faithful).expect("mix on DS");
    // Different seeds make different traces.
    let other = build_mix(MixSpec { seed: 12, ..spec }).expect("mix seed 12");
    assert_ne!(one.render(), other.render());
}

#[test]
fn mix_rejects_bad_specs() {
    assert!(build_mix(MixSpec {
        seed: 1,
        phases: 0,
        threads: 4
    })
    .is_err());
    assert!(build_mix(MixSpec {
        seed: 1,
        phases: 1,
        threads: 6
    })
    .is_err());
    assert!(build_mix(MixSpec {
        seed: 1,
        phases: 1,
        threads: 1
    })
    .is_err());
}

/// Every committed corpus trace must parse, match its pinned fingerprint
/// (encoded in a `# fingerprint` comment would be nicer, but the finals
/// ARE the pin), and replay cleanly on all three protocols.
#[test]
fn corpus_replays_on_all_protocols() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "dvst"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "committed corpus must not be empty");
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read corpus trace");
        let trace = Trace::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let n = trace.cores();
        for proto in Protocol::ALL {
            replay_timed(
                &trace,
                SystemConfig::small(n, proto),
                ReplayMode::Compressed,
            )
            .unwrap_or_else(|e| panic!("{} on {proto}: {e}", path.display()));
        }
        replay_oracle(
            &trace,
            SystemConfig::small(n, Protocol::DeNovoSync),
            5,
            ORACLE_DELIVERY_BUDGET,
        )
        .unwrap_or_else(|e| panic!("{} oracle: {e}", path.display()));
    }
}
