//! The fuzzer's acceptance tests: a real batch at two worker counts with
//! byte-identical digests and zero divergences, plus serialization
//! properties over generated cases.

use dvs_fuzz::{generate, run_batch, BatchConfig, FuzzCase, GenConfig, HarnessConfig};

/// The headline acceptance criterion: a 500-program batch over the stock
/// protocols yields zero true divergences (and no sick cases or panics),
/// and its result digest is byte-identical at 1 and 4 workers.
#[test]
fn batch_of_500_is_clean_and_worker_count_independent() {
    let cfg = |workers: usize| BatchConfig {
        seed_start: 0,
        count: 500,
        gen: GenConfig::default_pool(),
        harness: HarnessConfig::default(),
        workers,
    };
    let one = run_batch(&cfg(1));
    let four = run_batch(&cfg(4));

    assert_eq!(one.total, 500);
    assert_eq!(
        one.passed, 500,
        "true divergences on stock protocols: {:#?}",
        one.diverged
    );
    assert_eq!(one.sick, 0);
    assert_eq!(one.panicked, 0);
    assert!(one.diverged.is_empty());
    assert!(one.instrs_total > 0);

    assert_eq!(
        one.digest, four.digest,
        "digest must not depend on worker count"
    );
    assert_eq!(one.passed, four.passed);
    assert_eq!(one.instrs_total, four.instrs_total);
}

/// Every generated case round-trips through the `.dvsf` text format.
#[test]
fn generated_cases_round_trip_through_dvsf() {
    for cfg in [GenConfig::default_pool(), GenConfig::small()] {
        for seed in 0..150u64 {
            let case = generate(seed, &cfg);
            let text = case.render();
            let back =
                FuzzCase::parse(&text).unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}"));
            assert_eq!(case, back, "seed {seed}: round-trip mismatch");
        }
    }
}

/// The digest really covers case outcomes: disjoint seed ranges digest
/// differently.
#[test]
fn digest_distinguishes_seed_ranges() {
    let mk = |start: u64| BatchConfig {
        seed_start: start,
        count: 20,
        gen: GenConfig::small(),
        harness: HarnessConfig::default(),
        workers: 2,
    };
    let a = run_batch(&mk(0));
    let b = run_batch(&mk(1000));
    assert_ne!(a.digest, b.digest);
}
