//! Replays the committed `.dvsf` regression corpus.
//!
//! Two kinds of cases live under `corpus/`:
//!
//! - **Benign cases** (minimized or generator-picked): must pass the full
//!   differential stack on the stock protocols, with the committed
//!   reference fingerprint — a changed fingerprint means the generator,
//!   lowering, or reference semantics drifted, which must be a deliberate
//!   corpus update, never an accident.
//! - **Negative controls**: minimized reproducers for seeded
//!   [`ProtocolMutation`]s. Each must pass on the *stock* protocols
//!   (they are real programs, not malformed inputs), diverge under its
//!   mutation, and re-shrink to its committed floor — proving the whole
//!   catch-and-minimize pipeline still discriminates.

use dvs_core::config::ProtocolMutation;
use dvs_fuzz::{run_case, shrink, CaseVerdict, FuzzCase, HarnessConfig};

fn load(name: &str) -> FuzzCase {
    let path = format!("{}/corpus/{name}.dvsf", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    FuzzCase::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// name, committed reference fingerprint, lowered size.
const BENIGN: [(&str, u64, usize); 4] = [
    ("iriw-quad", 0x04584abed112454c, 171),
    ("lock-convoy", 0x854490b87adec8cc, 214),
    ("two-thread-mix", 0xe0d813514c784db6, 154),
    ("message-passing", 0x4d60ce5c6b5350c4, 118),
];

/// name, mutation, committed shrink floor (instruction count).
const CONTROLS: [(&str, ProtocolMutation, usize); 6] = [
    ("control-dnv-drop-xfer", ProtocolMutation::DnvDropXfer, 8),
    (
        "control-dnv-skip-repoint",
        ProtocolMutation::DnvSkipRepoint,
        8,
    ),
    (
        "control-mesi-skip-invalidate",
        ProtocolMutation::MesiSkipInvalidate,
        12,
    ),
    ("control-mesi-drop-ack", ProtocolMutation::MesiDropAck, 12),
    (
        "control-gcs-skip-update",
        ProtocolMutation::GcsSkipUpdate,
        8,
    ),
    (
        "control-gcs-drop-notify",
        ProtocolMutation::GcsDropNotify,
        28,
    ),
];

#[test]
fn benign_corpus_replays_green() {
    let h = HarnessConfig::default();
    for (name, want_fnv, want_instrs) in BENIGN {
        match run_case(&load(name), &h) {
            CaseVerdict::Pass { ref_fnv, instrs } => {
                assert_eq!(
                    ref_fnv, want_fnv,
                    "{name}: reference fingerprint drifted (got {ref_fnv:#018x})"
                );
                assert_eq!(instrs, want_instrs, "{name}: lowered size drifted");
            }
            other => panic!("{name}: expected pass, got {other:?}"),
        }
    }
}

#[test]
fn controls_pass_on_stock_protocols() {
    let h = HarnessConfig::default();
    for (name, _, _) in CONTROLS {
        let v = run_case(&load(name), &h);
        assert!(
            matches!(v, CaseVerdict::Pass { .. }),
            "{name}: stock protocols must pass the control program, got {v:?}"
        );
    }
}

#[test]
fn controls_are_caught_and_shrink_to_their_floor() {
    for (name, mutation, floor) in CONTROLS {
        let h = HarnessConfig {
            mutation: Some(mutation),
            ..Default::default()
        };
        let case = load(name);
        let v = run_case(&case, &h);
        assert!(
            v.is_divergent(),
            "{name}: mutation {mutation:?} was not caught, got {v:?}"
        );
        // The committed case is already minimal: re-shrinking must hold the
        // committed floor (a larger floor means the shrinker regressed).
        let out = shrink(&case, |c| run_case(c, &h).is_divergent());
        assert!(
            out.final_instrs <= floor,
            "{name}: shrunk to {} instrs, committed floor is {floor}",
            out.final_instrs
        );
    }
}

#[test]
fn seeded_controls_shrink_from_scratch() {
    // The end-to-end pipeline the corpus came from: generate a fresh case,
    // catch the mutation, and auto-shrink to no more than 8 instructions.
    // Both DeNovo controls hit that floor from every diverging seed tried;
    // seed 0 is pinned here.
    use dvs_fuzz::{generate, GenConfig};
    for mutation in [
        ProtocolMutation::DnvDropXfer,
        ProtocolMutation::DnvSkipRepoint,
    ] {
        let h = HarnessConfig {
            mutation: Some(mutation),
            ..Default::default()
        };
        let case = generate(0, &GenConfig::small());
        assert!(
            run_case(&case, &h).is_divergent(),
            "{mutation:?}: seed 0 must diverge"
        );
        let out = shrink(&case, |c| run_case(c, &h).is_divergent());
        assert!(
            out.final_instrs <= 8,
            "{mutation:?}: auto-shrunk to {} instrs, want <= 8",
            out.final_instrs
        );
        assert!(out.final_instrs < out.initial_instrs);
    }
}

#[test]
fn corpus_files_round_trip() {
    for name in BENIGN
        .iter()
        .map(|(n, _, _)| *n)
        .chain(CONTROLS.iter().map(|(n, _, _)| *n))
    {
        let case = load(name);
        let back = FuzzCase::parse(&case.render()).expect("re-parse");
        assert_eq!(case, back, "{name}: .dvsf render/parse must round-trip");
        assert_eq!(case.name, name, "{name}: corpus name must match filename");
    }
}
