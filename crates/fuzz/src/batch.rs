//! Parallel fuzz batches on the `dvs-campaign` thread pool.
//!
//! A batch generates `count` cases from consecutive seeds, runs the
//! differential harness on each, and folds every per-case summary line
//! into a single FNV-1a digest **in seed order**. Workers race over the
//! seeds, results land in index-ordered slots, and nothing about a
//! summary line depends on wall-clock or worker identity — so the digest
//! is byte-identical at any worker count, which is the property the
//! acceptance test pins.
//!
//! Each case runs under `catch_unwind`: a panic anywhere in the stack
//! (generator, lowering, simulator) is captured as that case's summary
//! line instead of poisoning the pool, so one pathological seed cannot
//! take down a batch.

use crate::case::FuzzCase;
use crate::diff::{run_case, CaseVerdict, HarnessConfig};
use crate::gen::{generate, GenConfig};
use dvs_campaign::{fnv1a_str, parallel_indexed, FNV_OFFSET};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A fuzz batch: which seeds, which generator pool, which harness, how
/// many workers.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// First generator seed; case `i` uses `seed_start + i`.
    pub seed_start: u64,
    /// Number of cases.
    pub count: usize,
    /// Generator pool.
    pub gen: GenConfig,
    /// Differential-harness budgets and (for negative controls) mutation.
    pub harness: HarnessConfig,
    /// Worker threads (`0` means one).
    pub workers: usize,
}

/// One diverging case out of a batch.
#[derive(Debug, Clone)]
pub struct DivergentCase {
    /// Generator seed (regenerate with the batch's [`GenConfig`]).
    pub seed: u64,
    /// The case's summary line (stage and detail included).
    pub line: String,
}

/// Aggregate outcome of a batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Cases run.
    pub total: usize,
    /// Cases where all seven runs agreed.
    pub passed: usize,
    /// Invalid cases (generator bugs — always 0 in a healthy build).
    pub sick: usize,
    /// Cases that panicked somewhere in the stack (also 0 when healthy).
    pub panicked: usize,
    /// Every diverging case, in seed order.
    pub diverged: Vec<DivergentCase>,
    /// Summed lowered instruction count across all cases (throughput
    /// denominators for the bench).
    pub instrs_total: usize,
    /// FNV-1a over all summary lines in seed order — worker-count
    /// independent by construction.
    pub digest: u64,
}

/// Runs one batch. See the module docs for the determinism contract.
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    let results: Vec<(String, CaseOutcome)> = parallel_indexed(cfg.count, cfg.workers, |i| {
        let seed = cfg.seed_start + i as u64;
        run_one(seed, &cfg.gen, &cfg.harness)
    });

    let mut report = BatchReport {
        total: cfg.count,
        passed: 0,
        sick: 0,
        panicked: 0,
        diverged: Vec::new(),
        instrs_total: 0,
        digest: FNV_OFFSET,
    };
    for (i, (line, outcome)) in results.iter().enumerate() {
        report.digest = fnv1a_str(report.digest, line);
        report.digest = fnv1a_str(report.digest, "\n");
        match outcome {
            CaseOutcome::Pass { instrs } => {
                report.passed += 1;
                report.instrs_total += instrs;
            }
            CaseOutcome::Sick => report.sick += 1,
            CaseOutcome::Panicked => report.panicked += 1,
            CaseOutcome::Diverged { instrs } => {
                report.instrs_total += instrs;
                report.diverged.push(DivergentCase {
                    seed: cfg.seed_start + i as u64,
                    line: line.clone(),
                });
            }
        }
    }
    report
}

/// Worker-side classification (the line carries the human detail).
enum CaseOutcome {
    Pass { instrs: usize },
    Sick,
    Diverged { instrs: usize },
    Panicked,
}

/// Generates, runs, and summarizes one seed. Never unwinds.
fn run_one(seed: u64, gen_cfg: &GenConfig, h: &HarnessConfig) -> (String, CaseOutcome) {
    let verdict = catch_unwind(AssertUnwindSafe(|| {
        let case: FuzzCase = generate(seed, gen_cfg);
        run_case(&case, h)
    }));
    match verdict {
        Ok(CaseVerdict::Pass { ref_fnv, instrs }) => (
            format!("seed={seed:#x} pass ref={ref_fnv:016x} instrs={instrs}"),
            CaseOutcome::Pass { instrs },
        ),
        Ok(CaseVerdict::Sick { reason }) => {
            (format!("seed={seed:#x} sick: {reason}"), CaseOutcome::Sick)
        }
        Ok(CaseVerdict::Diverged { instrs, divergence }) => (
            format!("seed={seed:#x} diverged {divergence} instrs={instrs}"),
            CaseOutcome::Diverged { instrs },
        ),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            (
                format!("seed={seed:#x} panicked: {msg}"),
                CaseOutcome::Panicked,
            )
        }
    }
}
