//! The differential harness: runs one [`FuzzCase`] nine ways and
//! cross-checks them.
//!
//! The oracle stack, cheapest first:
//!
//! 1. **`RefMachine`** — the sequential SC reference. It defines the
//!    expected final value of every *stable* word (a case's stable words
//!    have the same final value in every SC execution, see
//!    [`crate::case`]). A case the reference cannot finish is *sick*
//!    (an invalid program, not a protocol bug) — shrink candidates that
//!    break program validity land here and are rejected cheaply.
//! 2. **Timed systems** — `System::new` under MESI, DeNovoSync0,
//!    DeNovoSync, and GCS with the PR-1 runtime invariant checkers armed;
//!    the simulator's own error taxonomy (deadlock, cycle-limit, protocol
//!    violation, kernel assert) all count as divergences.
//! 3. **Untimed oracle systems** — `System::new_oracle` driven by a
//!    seeded random walk over the enabled message channels, sampling
//!    delivery interleavings no timed schedule would produce.
//!
//! After every system run: quiescent coherence verification, stable-word
//! comparison against the reference, witness-multiset predicates, and the
//! relational CoRR/IRIW checks over witnessed probes.

use crate::case::{FuzzCase, Lowered, WitnessKind};
use dvs_campaign::{fnv1a, fnv1a_str, FNV_OFFSET};
use dvs_core::config::{Protocol, ProtocolMutation, SystemConfig};
use dvs_core::system::System;
use dvs_engine::DetRng;
use dvs_mem::Addr;
use dvs_vm::reference::RefMachine;
use dvs_vm::Asm;
use std::sync::Arc;

/// Differential-harness knobs. Defaults are sized for fuzz batches: small
/// budgets that no healthy generated case comes near, so exhausting one is
/// itself a divergence.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// A seeded protocol bug to plant in every system run (negative
    /// controls); `None` fuzzes the stock protocols.
    pub mutation: Option<ProtocolMutation>,
    /// Step budget for the sequential reference.
    pub ref_steps: u64,
    /// Cycle budget for each timed run.
    pub max_cycles: u64,
    /// Delivery budget for each oracle random walk.
    pub oracle_deliveries: u64,
    /// Seed for the oracle walks (mixed with the protocol).
    pub walk_seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            mutation: None,
            ref_steps: 200_000,
            max_cycles: 400_000,
            oracle_deliveries: 120_000,
            walk_seed: 0xD1FF,
        }
    }
}

/// Where and how a case diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which run observed it: `"timed/M"`, `"oracle/DS"`, …
    pub stage: String,
    /// What went wrong (simulator error, mismatched word, violated
    /// predicate).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

/// The outcome of one differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseVerdict {
    /// All seven runs agreed. `ref_fnv` fingerprints the reference's
    /// stable memory image (worker-count independent); `instrs` is the
    /// lowered size.
    Pass { ref_fnv: u64, instrs: usize },
    /// The case itself is invalid (the reference could not run it) — not
    /// a protocol divergence.
    Sick { reason: String },
    /// A protocol run disagreed with the oracle stack.
    Diverged {
        /// Lowered size of the diverging case.
        instrs: usize,
        /// First divergence found (stages run in a fixed order).
        divergence: Divergence,
    },
}

impl CaseVerdict {
    /// Whether this is [`CaseVerdict::Diverged`].
    pub fn is_divergent(&self) -> bool {
        matches!(self, CaseVerdict::Diverged { .. })
    }
}

/// The harness core count (2×2 mesh; cases have at most 4 threads).
pub const CORES: usize = 4;

/// Runs the full differential stack on one case.
pub fn run_case(case: &FuzzCase, h: &HarnessConfig) -> CaseVerdict {
    if let Err(reason) = case.validate() {
        return CaseVerdict::Sick { reason };
    }
    let low = case.lower();

    // Stage 1: the sequential SC reference defines the stable image.
    let mut rm = RefMachine::new(low.programs.clone());
    if let Err(e) = rm.run(h.ref_steps) {
        return CaseVerdict::Sick {
            reason: format!("reference: {e}"),
        };
    }
    let ref_read = |a: Addr| rm.memory().read_word(a.word());
    let ref_vals: Vec<u64> = low.stable.iter().map(|&(_, a)| ref_read(a)).collect();
    // The reference is one SC execution, so the schedule-independent
    // predicates must hold there too — a violation means the case's static
    // expectations are wrong (a generator bug), not a protocol bug.
    if let Some(d) = check_predicates(&low, &ref_read) {
        return CaseVerdict::Sick {
            reason: format!("reference violates case predicates: {}", d.detail),
        };
    }
    let mut ref_fnv = FNV_OFFSET;
    for ((name, _), v) in low.stable.iter().zip(&ref_vals) {
        ref_fnv = fnv1a_str(ref_fnv, name);
        for b in v.to_le_bytes() {
            ref_fnv = fnv1a(ref_fnv, b);
        }
    }

    // Stages 2–9: each protocol, timed then untimed.
    let idle: Arc<dvs_vm::isa::Program> = {
        let mut a = Asm::new("idle");
        a.halt();
        Arc::new(a.build())
    };
    let mut padded = low.programs.clone();
    while padded.len() < CORES {
        padded.push(Arc::clone(&idle));
    }

    for proto in Protocol::EXTENDED {
        for timed in [true, false] {
            let stage = format!(
                "{}/{}",
                if timed { "timed" } else { "oracle" },
                proto.label()
            );
            if let Some(divergence) = run_one(h, &low, &ref_vals, &padded, proto, timed, stage) {
                return CaseVerdict::Diverged {
                    instrs: low.instr_count,
                    divergence,
                };
            }
        }
    }
    CaseVerdict::Pass {
        ref_fnv,
        instrs: low.instr_count,
    }
}

/// One system run plus all post-run checks. Returns the first divergence.
fn run_one(
    h: &HarnessConfig,
    low: &Lowered,
    ref_vals: &[u64],
    padded: &[Arc<dvs_vm::isa::Program>],
    proto: Protocol,
    timed: bool,
    stage: String,
) -> Option<Divergence> {
    let mut cfg = SystemConfig::small(CORES, proto);
    cfg.check_invariants = true;
    cfg.max_cycles = h.max_cycles;
    cfg.mutation = h.mutation;
    let diverge = |detail: String| {
        Some(Divergence {
            stage: stage.clone(),
            detail,
        })
    };

    let sys = if timed {
        let mut sys = System::new(cfg, Arc::clone(&low.layout), padded.to_vec());
        if let Err(e) = sys.run() {
            return diverge(format!("simulator error: {e}"));
        }
        sys
    } else {
        let mut sys = System::new_oracle(cfg, Arc::clone(&low.layout), padded.to_vec());
        // Seeded random walk over the enabled channels: a delivery order no
        // timed schedule would produce, re-seeded per protocol.
        let mut rng = DetRng::new(h.walk_seed ^ fnv1a_str(FNV_OFFSET, proto.label()));
        let mut delivered = 0u64;
        loop {
            if let Some(e) = sys.error() {
                return diverge(format!("simulator error: {e}"));
            }
            let channels = sys.oracle_channels();
            if channels.is_empty() {
                break;
            }
            let pick = channels[rng.below(channels.len())];
            sys.oracle_deliver(pick);
            delivered += 1;
            if delivered > h.oracle_deliveries {
                return diverge(format!(
                    "oracle walk exceeded {} deliveries without quiescing",
                    h.oracle_deliveries
                ));
            }
        }
        if let Some(e) = sys.error() {
            return diverge(format!("simulator error: {e}"));
        }
        if !sys.all_halted() {
            return diverge(format!(
                "channels drained with threads running: {}",
                sys.deadlock_error()
            ));
        }
        sys
    };

    if let Err(e) = sys.verify_coherence() {
        return diverge(format!("coherence: {e}"));
    }
    let read = |a: Addr| sys.read_word(a);
    for ((name, addr), &want) in low.stable.iter().zip(ref_vals.iter()) {
        let got = read(*addr);
        if got != want {
            return diverge(format!("stable word {name} = {got}, reference says {want}"));
        }
    }
    if let Some(mut d) = check_predicates(low, &read) {
        d.stage = stage;
        return Some(d);
    }
    None
}

/// The schedule-independent predicates: witness multisets and the
/// relational CoRR/IRIW checks. `stage` is filled in by the caller.
fn check_predicates(low: &Lowered, read: &dyn Fn(Addr) -> u64) -> Option<Divergence> {
    let diverge = |detail: String| {
        Some(Divergence {
            stage: String::new(),
            detail,
        })
    };
    for check in &low.witness_checks {
        let vals: Vec<u64> = check.slots.iter().map(|&a| read(a)).collect();
        match check.kind {
            WitnessKind::DistinctBelow { total } => {
                let mut sorted = vals.clone();
                sorted.sort_unstable();
                let distinct = sorted.windows(2).all(|w| w[0] != w[1]);
                let below = sorted.last().is_none_or(|&v| v < total);
                if !distinct || !below {
                    return diverge(format!(
                        "witnesses of {} must be distinct values below {total}, saw {vals:?} \
                         (an atomicity violation or lost update)",
                        check.what
                    ));
                }
            }
            WitnessKind::ZeroThen { rest } => {
                let zeros = vals.iter().filter(|&&v| v == 0).count();
                let legal = vals.iter().all(|&v| v == 0 || v == rest);
                if zeros > 1 || !legal {
                    return diverge(format!(
                        "witnesses of {} allow at most one 0 and otherwise {rest}, saw {vals:?}",
                        check.what
                    ));
                }
            }
        }
    }
    // CoRR: a same-word probe must not read backwards (1 then 0 on a
    // word that only ever goes 0 -> 1).
    for p in &low.rf_probes {
        if p.a == p.b && read(p.slot_a) == 1 && read(p.slot_b) == 0 {
            return diverge(format!(
                "CoRR violation: thread {} read rf{} as 1 then 0",
                p.thread, p.a
            ));
        }
    }
    // IRIW: two probes over the same unordered pair in opposite orders
    // must not both see "my first word set, my second not yet" — that
    // orders the two writes both ways.
    for (i, p) in low.rf_probes.iter().enumerate() {
        for q in &low.rf_probes[i + 1..] {
            let opposite = p.a == q.b && p.b == q.a && p.a != p.b;
            if opposite
                && read(p.slot_a) == 1
                && read(p.slot_b) == 0
                && read(q.slot_a) == 1
                && read(q.slot_b) == 0
            {
                return diverge(format!(
                    "IRIW violation: threads {} and {} observed rf{}/rf{} in \
                     contradictory orders",
                    p.thread, q.thread, p.a, p.b
                ));
            }
        }
    }
    None
}
