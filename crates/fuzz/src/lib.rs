//! # dvs-fuzz — differential concurrent-program fuzzing
//!
//! Generates small concurrent programs over the `dvs-vm` assembler DSL and
//! runs each one seven ways: the sequential SC reference machine, and
//! MESI / DeNovoSync0 / DeNovoSync each in timed (`System::new`) and
//! untimed oracle (`System::new_oracle`) modes. Final memory is
//! cross-checked word by word, schedule-dependent observations are judged
//! by interleaving-independent witness predicates, and witnessed probe
//! loads feed relational CoRR/IRIW checks — see [`case`] for why that
//! split makes differential checking of racy programs sound.
//!
//! On divergence, [`shrink`] delta-debugs the case down to a minimal
//! reproducer, serialized as a replayable `.dvsf` text file; the committed
//! corpus under `corpus/` is replayed by `tests/corpus.rs`. [`batch`] runs
//! seed ranges on the `dvs-campaign` thread pool with a worker-count
//! independent result digest. The `dvsf` binary wires it all together
//! (`gen` / `run` / `shrink` / `hunt`).

pub mod batch;
pub mod case;
pub mod diff;
pub mod gen;
pub mod shrink;

pub use batch::{run_batch, BatchConfig, BatchReport, DivergentCase};
pub use case::{FuzzCase, Lowered, Op, RfProbe, Shape, WitnessCheck, WitnessKind, MAX_THREADS};
pub use diff::{run_case, CaseVerdict, Divergence, HarnessConfig};
pub use gen::{generate, GenConfig};
pub use shrink::{shrink, ShrinkOutcome};

/// Parses a mutation token as used by the `dvsf` CLI and `scripts/ci.sh`.
/// Delegates to `dvs-campaign`'s parser so spec tokens, `dvsf`, and
/// `dvs-serve` all accept the same vocabulary.
///
/// # Errors
///
/// Lists the known tokens when `tok` is not one of them.
pub fn parse_mutation(tok: &str) -> Result<dvs_core::config::ProtocolMutation, String> {
    dvs_campaign::parse_mutation_token(tok)
}
