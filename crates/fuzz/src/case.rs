//! The fuzzer's program representation: a [`FuzzCase`] is a small
//! concurrent program over a fixed menu of synchronization idioms, one
//! op-list per thread, plus the shared-address [`Shape`] the ops index
//! into.
//!
//! Cases are *deterministic under sequential consistency by construction*:
//! shared locations are only touched through idioms whose final value is
//! interleaving-independent (fetch-and-increment counters, test-and-set
//! words, lock-guarded counters, publish-once flags), and every
//! schedule-dependent observation (the old value an RMW returned, what a
//! racy probe load saw) is quarantined into per-thread *witness* words that
//! are checked against interleaving-independent predicates instead of being
//! compared across runs. That split is what makes differential checking
//! sound: the *stable* words must match the sequential reference machine
//! exactly, on every protocol, timed or untimed.
//!
//! [`FuzzCase::lower`] expands the ops to `dvs-vm` programs following the
//! DeNovo contract (producers fence before raising flags, consumers
//! self-invalidate the data region after acquiring), so one lowering is SC
//! on MESI and both DeNovo variants. Cases serialize to a line-oriented
//! `.dvsf` text format for the committed regression corpus.

use dvs_mem::{Addr, LayoutBuilder, MemoryLayout};
use dvs_vm::asm::Asm;
use dvs_vm::isa::{Cond, Program, Reg};
use std::sync::Arc;

/// `.dvsf` format version.
pub const DVSF_VERSION: u32 = 1;

/// Maximum thread count a case may use (the harness runs a 2×2 mesh).
pub const MAX_THREADS: usize = 4;

/// How many shared locations of each class a case may address. Each class
/// has one access discipline (see [`Op`]); a location never mixes
/// disciplines, which is what keeps final values schedule-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Shape {
    /// Fetch-and-increment counters (`sync` region, atomic RMW only).
    pub fai: u8,
    /// Locks, each guarding its own plain-data counter in the `cs` region.
    pub locks: u8,
    /// Test-and-set-once words.
    pub tas: u8,
    /// Swap words; every swap stores the word's fixed constant.
    pub swaps: u8,
    /// Publish-once flags, each with a plain-data payload word.
    pub flags: u8,
    /// Racy flag words: sync-stored to 1, sync-probed by readers (the
    /// CoRR/IRIW idiom pool).
    pub rf: u8,
    /// Private scratch words per thread.
    pub priv_slots: u8,
}

impl Shape {
    /// The constant a swap word's swappers store (never 0, distinct per
    /// word so a cross-wired swap is visible in final memory).
    pub fn swap_const(word: u8) -> u64 {
        0x5A + u64::from(word)
    }
}

/// One generator op. Each op lowers to a short, self-contained instruction
/// sequence; `witness` flags make the op record its schedule-dependent
/// observation into a fresh private witness word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Plain store of `value` into the thread's own scratch word `slot`.
    PrivStore { slot: u8, value: u16 },
    /// Plain load of scratch word `slot`, folded into the thread's history
    /// hash (published at halt).
    PrivLoad { slot: u8 },
    /// Atomic fetch-and-increment of counter `ctr`.
    Fai { ctr: u8, witness: bool },
    /// Test-and-set of word `word`.
    Tas { word: u8, witness: bool },
    /// Swap the word's constant into word `word`.
    Swap { word: u8, witness: bool },
    /// Tatas-acquire lock `lock`, self-invalidate the critical-section
    /// region, increment the guarded counter, fence, release.
    LockedAdd { lock: u8, witness: bool },
    /// Plain-store `value` to flag `flag`'s payload, fence, sync-store the
    /// flag to 1. At most one per flag, in the flag's owner thread.
    MsgSend { flag: u8, value: u16 },
    /// Spin until flag `flag` reads 1, self-invalidate the payload region,
    /// fold the payload into the history hash. Only threads with a higher
    /// id than the flag's owner may wait (keeps the wait graph acyclic).
    MsgWait { flag: u8 },
    /// Sync-store 1 to racy flag word `word`.
    RfStore { word: u8 },
    /// Sync-load racy word `a` then `b`. `a == b` is a CoRR probe; two
    /// witnessed probes over the same pair in opposite orders form an IRIW
    /// probe. Witnessed observations feed the relational SC checks.
    RfLoad2 { a: u8, b: u8, witness: bool },
    /// Standalone fence.
    Fence,
    /// Self-invalidate the `cs` and `payload` data regions (always legal;
    /// only performance-relevant).
    SelfInv,
    /// No-op.
    Nop,
}

/// A generated (or shrunk, or parsed) concurrent program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Corpus-stable identifier.
    pub name: String,
    /// The generator seed this case came from (provenance only; a parsed
    /// or shrunk case keeps the seed of its ancestor).
    pub seed: u64,
    /// Shared-location counts.
    pub shape: Shape,
    /// One op list per thread, executed straight-line.
    pub threads: Vec<Vec<Op>>,
}

/// How a witness multiset is judged. Both predicates are true in *every*
/// SC execution (and every coherent one), regardless of interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessKind {
    /// Observed old values must be pairwise distinct and `< total`
    /// (fetch-and-increment and lock-guarded counters: the op sequence
    /// observes a permutation of `0..total`).
    DistinctBelow { total: u64 },
    /// At most one observation of 0; every other must equal `rest`
    /// (test-and-set and constant-swap words).
    ZeroThen { rest: u64 },
}

/// The witness words observing one shared location, with the predicate
/// their values must satisfy.
#[derive(Debug, Clone)]
pub struct WitnessCheck {
    /// Which location, for failure messages (e.g. `"fai0"`).
    pub what: String,
    /// The witness words, across all threads.
    pub slots: Vec<Addr>,
    /// The interleaving-independent predicate.
    pub kind: WitnessKind,
}

/// One witnessed `RfLoad2`: which racy words it probed, in which order,
/// and where the two observations live. The differential harness derives
/// CoRR (`a == b`) and pairwise IRIW checks from these.
#[derive(Debug, Clone)]
pub struct RfProbe {
    /// Thread that executed the probe.
    pub thread: usize,
    /// First word probed.
    pub a: u8,
    /// Second word probed.
    pub b: u8,
    /// Witness word holding the first observation.
    pub slot_a: Addr,
    /// Witness word holding the second observation.
    pub slot_b: Addr,
}

/// A case lowered to runnable form: layout, per-thread programs, and the
/// observation plan the differential harness executes.
pub struct Lowered {
    /// The memory layout the programs were assembled against.
    pub layout: Arc<MemoryLayout>,
    /// One program per case thread (the harness pads to the mesh size).
    pub programs: Vec<Arc<Program>>,
    /// Words whose final value is the same in every SC execution — these
    /// must match the reference machine exactly.
    pub stable: Vec<(String, Addr)>,
    /// Witness multiset predicates, one per observed shared location.
    pub witness_checks: Vec<WitnessCheck>,
    /// Witnessed racy probes for the relational (CoRR/IRIW) checks.
    pub rf_probes: Vec<RfProbe>,
    /// Total instruction count over the case's own programs (idle mesh
    /// padding excluded) — the shrinker's minimization metric.
    pub instr_count: usize,
}

impl FuzzCase {
    /// Structural validity: indices in shape bounds, thread count within
    /// the mesh, and the flag protocol (one sender per flag, waiters
    /// strictly after the owner in thread order) that guarantees the case
    /// is deadlock-free under SC.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads.is_empty() || self.threads.len() > MAX_THREADS {
            return Err(format!(
                "case needs 1..={MAX_THREADS} threads, has {}",
                self.threads.len()
            ));
        }
        let s = &self.shape;
        let mut flag_owner: Vec<Option<usize>> = vec![None; s.flags as usize];
        for (t, ops) in self.threads.iter().enumerate() {
            for op in ops {
                let bound = |what: &str, idx: u8, n: u8| {
                    if idx < n {
                        Ok(())
                    } else {
                        Err(format!("thread {t}: {what} index {idx} out of range {n}"))
                    }
                };
                match *op {
                    Op::PrivStore { slot, .. } | Op::PrivLoad { slot } => {
                        bound("priv slot", slot, s.priv_slots)?
                    }
                    Op::Fai { ctr, .. } => bound("fai counter", ctr, s.fai)?,
                    Op::Tas { word, .. } => bound("tas word", word, s.tas)?,
                    Op::Swap { word, .. } => bound("swap word", word, s.swaps)?,
                    Op::LockedAdd { lock, .. } => bound("lock", lock, s.locks)?,
                    Op::MsgSend { flag, .. } => {
                        bound("flag", flag, s.flags)?;
                        let owner = &mut flag_owner[flag as usize];
                        if owner.is_some() {
                            return Err(format!("flag {flag} has more than one sender"));
                        }
                        *owner = Some(t);
                    }
                    Op::MsgWait { flag } => bound("flag", flag, s.flags)?,
                    Op::RfStore { word } => bound("rf word", word, s.rf)?,
                    Op::RfLoad2 { a, b, .. } => {
                        bound("rf word", a, s.rf)?;
                        bound("rf word", b, s.rf)?;
                    }
                    Op::Fence | Op::SelfInv | Op::Nop => {}
                }
            }
        }
        for (t, ops) in self.threads.iter().enumerate() {
            for op in ops {
                if let Op::MsgWait { flag } = *op {
                    match flag_owner[flag as usize] {
                        None => {
                            return Err(format!(
                                "thread {t} waits on flag {flag}, which is never sent"
                            ))
                        }
                        Some(owner) if owner >= t => {
                            return Err(format!(
                                "thread {t} waits on flag {flag} owned by thread {owner} \
                                 (waiters must come after the owner)"
                            ))
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Expands the case to programs, layout, and observation plan.
    ///
    /// # Panics
    ///
    /// Panics if the case fails [`FuzzCase::validate`] — callers validate
    /// first (the harness maps invalid cases to a "sick" verdict).
    pub fn lower(&self) -> Lowered {
        self.validate().expect("lowering requires a valid case");
        let s = self.shape;
        let nthreads = self.threads.len();
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let cs = lb.region("cs");
        let payload = lb.region("payload");

        let mut stable: Vec<(String, Addr)> = Vec::new();
        let named = |lb: &mut LayoutBuilder,
                     stable: &mut Vec<(String, Addr)>,
                     name: String,
                     region,
                     keep: bool| {
            let a = lb.sync_var(&name, region, true);
            if keep {
                stable.push((name, a));
            }
            a
        };

        let fai: Vec<Addr> = (0..s.fai)
            .map(|i| named(&mut lb, &mut stable, format!("fai{i}"), sync, true))
            .collect();
        let locks: Vec<Addr> = (0..s.locks)
            .map(|i| named(&mut lb, &mut stable, format!("lock{i}"), sync, true))
            .collect();
        let lctrs: Vec<Addr> = (0..s.locks)
            .map(|i| named(&mut lb, &mut stable, format!("lctr{i}"), cs, true))
            .collect();
        let tas: Vec<Addr> = (0..s.tas)
            .map(|i| named(&mut lb, &mut stable, format!("tas{i}"), sync, true))
            .collect();
        let swaps: Vec<Addr> = (0..s.swaps)
            .map(|i| named(&mut lb, &mut stable, format!("swap{i}"), sync, true))
            .collect();
        let flags: Vec<Addr> = (0..s.flags)
            .map(|i| named(&mut lb, &mut stable, format!("flag{i}"), sync, true))
            .collect();
        let datums: Vec<Addr> = (0..s.flags)
            .map(|i| named(&mut lb, &mut stable, format!("datum{i}"), payload, true))
            .collect();
        let rf: Vec<Addr> = (0..s.rf)
            .map(|i| named(&mut lb, &mut stable, format!("rf{i}"), sync, true))
            .collect();

        // Per-thread private words. Each thread gets its own region so a
        // region-level self-invalidation never creates cross-thread
        // staleness hazards on private data.
        let mut scratch: Vec<Vec<Addr>> = Vec::with_capacity(nthreads);
        let mut hists: Vec<Addr> = Vec::with_capacity(nthreads);
        let mut wits: Vec<Vec<Addr>> = Vec::with_capacity(nthreads);
        for (t, ops) in self.threads.iter().enumerate() {
            let region = lb.region(&format!("priv{t}"));
            scratch.push(
                (0..s.priv_slots)
                    .map(|k| named(&mut lb, &mut stable, format!("p{t}_{k}"), region, true))
                    .collect(),
            );
            hists.push(named(
                &mut lb,
                &mut stable,
                format!("hist{t}"),
                region,
                false,
            ));
            let wit_count: usize = ops.iter().map(|op| op.witness_slots()).sum();
            // Witness words are schedule-dependent: allocated but never in
            // the stable set.
            wits.push(
                (0..wit_count)
                    .map(|k| named(&mut lb, &mut stable, format!("w{t}_{k}"), region, false))
                    .collect(),
            );
        }

        // Witness bookkeeping: which slots observe which location.
        let mut fai_wits: Vec<Vec<Addr>> = vec![Vec::new(); s.fai as usize];
        let mut lock_wits: Vec<Vec<Addr>> = vec![Vec::new(); s.locks as usize];
        let mut tas_wits: Vec<Vec<Addr>> = vec![Vec::new(); s.tas as usize];
        let mut swap_wits: Vec<Vec<Addr>> = vec![Vec::new(); s.swaps as usize];
        let mut fai_total = vec![0u64; s.fai as usize];
        let mut lock_total = vec![0u64; s.locks as usize];
        let mut tas_total = vec![0u64; s.tas as usize];
        let mut swap_total = vec![0u64; s.swaps as usize];
        let mut rf_probes: Vec<RfProbe> = Vec::new();

        let mut programs: Vec<Arc<Program>> = Vec::with_capacity(nthreads);
        let mut instr_count = 0usize;
        for (t, ops) in self.threads.iter().enumerate() {
            let mut a = Asm::new("fuzz");
            // Register map: r1 value, r2 address, r3 observed, r4 history
            // hash (live across ops), r5/r6/r7 op-local temporaries.
            let (v, p, r, acc, q, zero, tmp) =
                (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6), Reg(7));
            let mut next_wit = 0usize;
            let mut uses_hash = false;
            for op in ops {
                match *op {
                    Op::PrivStore { slot, value } => {
                        a.movi(v, u64::from(value));
                        a.movi(p, scratch[t][slot as usize].raw());
                        a.store(v, p, 0);
                    }
                    Op::PrivLoad { slot } => {
                        a.movi(p, scratch[t][slot as usize].raw());
                        a.load(r, p, 0);
                        a.add(acc, acc, r);
                        uses_hash = true;
                    }
                    Op::Fai { ctr, witness } => {
                        a.movi(v, 1);
                        a.movi(p, fai[ctr as usize].raw());
                        a.fai(r, p, 0, v);
                        fai_total[ctr as usize] += 1;
                        if witness {
                            let w = wits[t][next_wit];
                            next_wit += 1;
                            a.movi(p, w.raw());
                            a.store(r, p, 0);
                            fai_wits[ctr as usize].push(w);
                        }
                    }
                    Op::Tas { word, witness } => {
                        a.movi(p, tas[word as usize].raw());
                        a.tas(r, p, 0);
                        tas_total[word as usize] += 1;
                        if witness {
                            let w = wits[t][next_wit];
                            next_wit += 1;
                            a.movi(p, w.raw());
                            a.store(r, p, 0);
                            tas_wits[word as usize].push(w);
                        }
                    }
                    Op::Swap { word, witness } => {
                        a.movi(v, Shape::swap_const(word));
                        a.movi(p, swaps[word as usize].raw());
                        a.swap(r, p, 0, v);
                        swap_total[word as usize] += 1;
                        if witness {
                            let w = wits[t][next_wit];
                            next_wit += 1;
                            a.movi(p, w.raw());
                            a.store(r, p, 0);
                            swap_wits[word as usize].push(w);
                        }
                    }
                    Op::LockedAdd { lock, witness } => {
                        a.movi(zero, 0);
                        a.movi(v, 1);
                        a.movi(p, locks[lock as usize].raw());
                        let acquire = a.here();
                        a.tas(r, p, 0);
                        let entered = a.label();
                        a.beq(r, zero, entered); // old 0 => lock acquired
                        a.spin_until(r, p, 0, Cond::Eq, zero); // test
                        a.jmp(acquire); // ...and set again
                        a.bind(entered);
                        a.self_inv(cs); // acquire: drop stale cs data
                        a.movi(q, lctrs[lock as usize].raw());
                        a.load(r, q, 0);
                        a.add(tmp, r, v);
                        a.store(tmp, q, 0);
                        a.fence(); // update durable before release
                        a.stores(zero, p, 0); // release
                        lock_total[lock as usize] += 1;
                        if witness {
                            let w = wits[t][next_wit];
                            next_wit += 1;
                            a.movi(p, w.raw());
                            a.store(r, p, 0);
                            lock_wits[lock as usize].push(w);
                        }
                    }
                    Op::MsgSend { flag, value } => {
                        a.movi(v, u64::from(value));
                        a.movi(p, datums[flag as usize].raw());
                        a.store(v, p, 0); // payload (plain data)
                        a.fence(); // payload durable before the flag
                        a.movi(v, 1);
                        a.movi(p, flags[flag as usize].raw());
                        a.stores(v, p, 0);
                    }
                    Op::MsgWait { flag } => {
                        a.movi(v, 1);
                        a.movi(p, flags[flag as usize].raw());
                        a.spin_until(r, p, 0, Cond::Eq, v);
                        a.self_inv(payload); // acquire: drop stale payload
                        a.movi(p, datums[flag as usize].raw());
                        a.load(r, p, 0);
                        a.add(acc, acc, r);
                        uses_hash = true;
                    }
                    Op::RfStore { word } => {
                        a.movi(v, 1);
                        a.movi(p, rf[word as usize].raw());
                        a.stores(v, p, 0);
                    }
                    Op::RfLoad2 {
                        a: wa,
                        b: wb,
                        witness,
                    } => {
                        a.movi(p, rf[wa as usize].raw());
                        a.loads(r, p, 0);
                        if wb != wa {
                            a.movi(p, rf[wb as usize].raw());
                        }
                        a.loads(q, p, 0);
                        if witness {
                            let (sa, sb) = (wits[t][next_wit], wits[t][next_wit + 1]);
                            next_wit += 2;
                            a.movi(p, sa.raw());
                            a.store(r, p, 0);
                            a.movi(p, sb.raw());
                            a.store(q, p, 0);
                            rf_probes.push(RfProbe {
                                thread: t,
                                a: wa,
                                b: wb,
                                slot_a: sa,
                                slot_b: sb,
                            });
                        }
                    }
                    Op::Fence => {
                        a.fence();
                    }
                    Op::SelfInv => {
                        a.self_inv(cs);
                        a.self_inv(payload);
                    }
                    Op::Nop => {
                        a.nop();
                    }
                }
            }
            if uses_hash {
                a.movi(p, hists[t].raw());
                a.store(acc, p, 0);
                stable.push((format!("hist{t}"), hists[t]));
            }
            a.halt();
            let prog = a.build();
            instr_count += prog.len();
            programs.push(Arc::new(prog));
        }

        let mut witness_checks = Vec::new();
        let mut push_checks =
            |what: &str, wits: Vec<Vec<Addr>>, kind: &dyn Fn(usize) -> WitnessKind| {
                for (i, slots) in wits.into_iter().enumerate() {
                    if !slots.is_empty() {
                        witness_checks.push(WitnessCheck {
                            what: format!("{what}{i}"),
                            slots,
                            kind: kind(i),
                        });
                    }
                }
            };
        push_checks("fai", fai_wits, &|i| WitnessKind::DistinctBelow {
            total: fai_total[i],
        });
        push_checks("lctr", lock_wits, &|i| WitnessKind::DistinctBelow {
            total: lock_total[i],
        });
        push_checks("tas", tas_wits, &|_| WitnessKind::ZeroThen { rest: 1 });
        push_checks("swap", swap_wits, &|i| WitnessKind::ZeroThen {
            rest: Shape::swap_const(i as u8),
        });
        // Totals keep the counts honest even when nothing is witnessed:
        // the stable compare against the reference covers final values, so
        // nothing further is needed for unwitnessed locations.
        let _ = (tas_total, swap_total);

        Lowered {
            layout: Arc::new(lb.build()),
            programs,
            stable,
            witness_checks,
            rf_probes,
            instr_count,
        }
    }

    /// Total lowered instruction count (the shrinker's metric).
    pub fn instr_count(&self) -> usize {
        self.lower().instr_count
    }

    /// Renders the case in `.dvsf` text form (see the module docs of
    /// [`crate::case`]; line-oriented, round-trips through
    /// [`FuzzCase::parse`]).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = self.shape;
        writeln!(out, "dvsf {DVSF_VERSION}").unwrap();
        writeln!(out, "name {}", self.name).unwrap();
        writeln!(out, "seed {:#x}", self.seed).unwrap();
        writeln!(
            out,
            "shape fai={} locks={} tas={} swaps={} flags={} rf={} priv={}",
            s.fai, s.locks, s.tas, s.swaps, s.flags, s.rf, s.priv_slots
        )
        .unwrap();
        for ops in &self.threads {
            writeln!(out, "thread").unwrap();
            for op in ops {
                let w = |witness: bool| if witness { "w" } else { "-" };
                match *op {
                    Op::PrivStore { slot, value } => {
                        writeln!(out, "  priv_store {slot} {value}").unwrap()
                    }
                    Op::PrivLoad { slot } => writeln!(out, "  priv_load {slot}").unwrap(),
                    Op::Fai { ctr, witness } => {
                        writeln!(out, "  fai {ctr} {}", w(witness)).unwrap()
                    }
                    Op::Tas { word, witness } => {
                        writeln!(out, "  tas {word} {}", w(witness)).unwrap()
                    }
                    Op::Swap { word, witness } => {
                        writeln!(out, "  swap {word} {}", w(witness)).unwrap()
                    }
                    Op::LockedAdd { lock, witness } => {
                        writeln!(out, "  locked_add {lock} {}", w(witness)).unwrap()
                    }
                    Op::MsgSend { flag, value } => {
                        writeln!(out, "  msg_send {flag} {value}").unwrap()
                    }
                    Op::MsgWait { flag } => writeln!(out, "  msg_wait {flag}").unwrap(),
                    Op::RfStore { word } => writeln!(out, "  rf_store {word}").unwrap(),
                    Op::RfLoad2 { a, b, witness } => {
                        writeln!(out, "  rf_load2 {a} {b} {}", w(witness)).unwrap()
                    }
                    Op::Fence => writeln!(out, "  fence").unwrap(),
                    Op::SelfInv => writeln!(out, "  self_inv").unwrap(),
                    Op::Nop => writeln!(out, "  nop").unwrap(),
                }
            }
            writeln!(out, "end").unwrap();
        }
        out
    }

    /// Parses `.dvsf` text. Blank lines and `#` comments are skipped.
    ///
    /// # Errors
    ///
    /// A message naming the offending line. The parsed case is also
    /// [`FuzzCase::validate`]d.
    pub fn parse(text: &str) -> Result<FuzzCase, String> {
        let mut name = None;
        let mut seed = 0u64;
        let mut shape: Option<Shape> = None;
        let mut threads: Vec<Vec<Op>> = Vec::new();
        let mut current: Option<Vec<Op>> = None;
        let mut saw_header = false;

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
            let mut toks = line.split_whitespace();
            let head = toks.next().expect("non-empty line");
            let mut rest = |what: &str| toks.next().ok_or_else(|| err(&format!("missing {what}")));
            let parse_u8 = |tok: &str| tok.parse::<u8>().map_err(|_| err("bad index"));
            let parse_u16 = |tok: &str| tok.parse::<u16>().map_err(|_| err("bad value"));
            let parse_wit = |tok: &str| match tok {
                "w" => Ok(true),
                "-" => Ok(false),
                _ => Err(err("bad witness marker (want 'w' or '-')")),
            };
            match head {
                "dvsf" => {
                    let v: u32 = rest("version")?.parse().map_err(|_| err("bad version"))?;
                    if v != DVSF_VERSION {
                        return Err(err(&format!("unsupported version {v}")));
                    }
                    saw_header = true;
                }
                "name" => name = Some(rest("name")?.to_owned()),
                "seed" => {
                    let tok = rest("seed")?;
                    let tok = tok.strip_prefix("0x").unwrap_or(tok);
                    seed = u64::from_str_radix(tok, 16).map_err(|_| err("bad seed"))?;
                }
                "shape" => {
                    let mut s = Shape::default();
                    for kv in toks.by_ref() {
                        let (k, v) = kv.split_once('=').ok_or_else(|| err("bad shape field"))?;
                        let v = parse_u8(v)?;
                        match k {
                            "fai" => s.fai = v,
                            "locks" => s.locks = v,
                            "tas" => s.tas = v,
                            "swaps" => s.swaps = v,
                            "flags" => s.flags = v,
                            "rf" => s.rf = v,
                            "priv" => s.priv_slots = v,
                            _ => return Err(err("unknown shape field")),
                        }
                    }
                    shape = Some(s);
                }
                "thread" => {
                    if current.is_some() {
                        return Err(err("nested thread section"));
                    }
                    current = Some(Vec::new());
                }
                "end" => {
                    let ops = current.take().ok_or_else(|| err("end outside thread"))?;
                    threads.push(ops);
                }
                op => {
                    let ops = current.as_mut().ok_or_else(|| err("op outside thread"))?;
                    let parsed = match op {
                        "priv_store" => Op::PrivStore {
                            slot: parse_u8(rest("slot")?)?,
                            value: parse_u16(rest("value")?)?,
                        },
                        "priv_load" => Op::PrivLoad {
                            slot: parse_u8(rest("slot")?)?,
                        },
                        "fai" => Op::Fai {
                            ctr: parse_u8(rest("ctr")?)?,
                            witness: parse_wit(rest("witness")?)?,
                        },
                        "tas" => Op::Tas {
                            word: parse_u8(rest("word")?)?,
                            witness: parse_wit(rest("witness")?)?,
                        },
                        "swap" => Op::Swap {
                            word: parse_u8(rest("word")?)?,
                            witness: parse_wit(rest("witness")?)?,
                        },
                        "locked_add" => Op::LockedAdd {
                            lock: parse_u8(rest("lock")?)?,
                            witness: parse_wit(rest("witness")?)?,
                        },
                        "msg_send" => Op::MsgSend {
                            flag: parse_u8(rest("flag")?)?,
                            value: parse_u16(rest("value")?)?,
                        },
                        "msg_wait" => Op::MsgWait {
                            flag: parse_u8(rest("flag")?)?,
                        },
                        "rf_store" => Op::RfStore {
                            word: parse_u8(rest("word")?)?,
                        },
                        "rf_load2" => Op::RfLoad2 {
                            a: parse_u8(rest("a")?)?,
                            b: parse_u8(rest("b")?)?,
                            witness: parse_wit(rest("witness")?)?,
                        },
                        "fence" => Op::Fence,
                        "self_inv" => Op::SelfInv,
                        "nop" => Op::Nop,
                        _ => return Err(err("unknown op")),
                    };
                    ops.push(parsed);
                }
            }
        }
        if !saw_header {
            return Err("missing 'dvsf <version>' header".to_owned());
        }
        if current.is_some() {
            return Err("unterminated thread section".to_owned());
        }
        let case = FuzzCase {
            name: name.ok_or("missing 'name' line")?,
            seed,
            shape: shape.ok_or("missing 'shape' line")?,
            threads,
        };
        case.validate()?;
        Ok(case)
    }
}

impl Op {
    /// How many private witness words this op consumes when lowered.
    pub fn witness_slots(&self) -> usize {
        match *self {
            Op::Fai { witness, .. }
            | Op::Tas { witness, .. }
            | Op::Swap { witness, .. }
            | Op::LockedAdd { witness, .. } => usize::from(witness),
            Op::RfLoad2 { witness, .. } => 2 * usize::from(witness),
            _ => 0,
        }
    }

    /// A copy with the witness flag cleared, if the op carries one (the
    /// shrinker's witness-stripping reduction).
    pub fn without_witness(&self) -> Option<Op> {
        match *self {
            Op::Fai { ctr, witness: true } => Some(Op::Fai {
                ctr,
                witness: false,
            }),
            Op::Tas {
                word,
                witness: true,
            } => Some(Op::Tas {
                word,
                witness: false,
            }),
            Op::Swap {
                word,
                witness: true,
            } => Some(Op::Swap {
                word,
                witness: false,
            }),
            Op::LockedAdd {
                lock,
                witness: true,
            } => Some(Op::LockedAdd {
                lock,
                witness: false,
            }),
            Op::RfLoad2 {
                a,
                b,
                witness: true,
            } => Some(Op::RfLoad2 {
                a,
                b,
                witness: false,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzCase {
        FuzzCase {
            name: "sample".into(),
            seed: 0xBEEF,
            shape: Shape {
                fai: 1,
                locks: 1,
                tas: 1,
                swaps: 1,
                flags: 1,
                rf: 2,
                priv_slots: 2,
            },
            threads: vec![
                vec![
                    Op::PrivStore { slot: 0, value: 17 },
                    Op::Fai {
                        ctr: 0,
                        witness: true,
                    },
                    Op::MsgSend { flag: 0, value: 99 },
                    Op::RfStore { word: 0 },
                    Op::Fence,
                ],
                vec![
                    Op::MsgWait { flag: 0 },
                    Op::LockedAdd {
                        lock: 0,
                        witness: false,
                    },
                    Op::RfLoad2 {
                        a: 0,
                        b: 1,
                        witness: true,
                    },
                    Op::Tas {
                        word: 0,
                        witness: true,
                    },
                    Op::Swap {
                        word: 0,
                        witness: false,
                    },
                    Op::PrivLoad { slot: 0 },
                    Op::SelfInv,
                    Op::Nop,
                ],
            ],
        }
    }

    #[test]
    fn dvsf_round_trips() {
        let case = sample();
        let text = case.render();
        let back = FuzzCase::parse(&text).expect("parse");
        assert_eq!(case, back);
        assert_eq!(text, back.render());
    }

    #[test]
    fn lowering_counts_and_plan() {
        let low = sample().lower();
        assert_eq!(low.programs.len(), 2);
        assert!(low.instr_count > 0);
        assert_eq!(
            low.instr_count,
            low.programs.iter().map(|p| p.len()).sum::<usize>()
        );
        // fai0 witnessed once, tas0 witnessed once, probe witnessed.
        assert_eq!(low.witness_checks.len(), 2);
        assert_eq!(low.rf_probes.len(), 1);
        // Witness and hist words never enter the stable set.
        assert!(low.stable.iter().all(|(n, _)| !n.starts_with('w')));
    }

    #[test]
    fn validation_rejects_flag_protocol_violations() {
        let mut case = sample();
        // Waiting before the owner in thread order is rejected.
        case.threads[0].push(Op::MsgWait { flag: 0 });
        assert!(case.validate().unwrap_err().contains("waits on flag"));

        let mut orphan = sample();
        orphan.threads[0].retain(|op| !matches!(op, Op::MsgSend { .. }));
        assert!(orphan.validate().unwrap_err().contains("never sent"));
    }
}
