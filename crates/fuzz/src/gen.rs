//! The seeded program generator.
//!
//! `generate(seed, cfg)` is a pure function: the same seed and
//! configuration produce the same [`FuzzCase`] on every host and worker.
//! Construction keeps cases valid (and hence deadlock-free under SC) by
//! design: every flag's `MsgSend` is placed in its owner thread before any
//! waiter is allowed to reference it, and waiters only ever look *down*
//! the thread order. The litmus shapes from `dvs_vm::litmus` seed the
//! idiom pool — message-passing chains, CoRR probes, and IRIW quads are
//! injected as whole groups before random filler ops are layered on top.

use crate::case::{FuzzCase, Op, Shape, MAX_THREADS};
use dvs_engine::DetRng;

/// Bounds for the generator. Fields bound the *maximum* a case may draw;
/// each case picks its actual shape from these ranges.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Inclusive thread-count range (clamped to `1..=4`).
    pub threads: (u8, u8),
    /// Inclusive filler-op count per thread (idiom ops come on top).
    pub ops: (u8, u8),
    /// Maximum shared-location counts per class.
    pub shape: Shape,
    /// Inject whole litmus-shaped groups (MP chains, CoRR, IRIW).
    pub idioms: bool,
}

impl GenConfig {
    /// The default fuzzing pool: up to 4 threads, a handful of contended
    /// locations of every class.
    pub fn default_pool() -> Self {
        GenConfig {
            threads: (2, 4),
            ops: (3, 9),
            shape: Shape {
                fai: 2,
                locks: 2,
                tas: 1,
                swaps: 1,
                flags: 2,
                rf: 2,
                priv_slots: 3,
            },
            idioms: true,
        }
    }

    /// A smaller pool for shrink-heavy work (negative controls, CI smoke):
    /// fewer threads and ops means fewer shrink candidates.
    pub fn small() -> Self {
        GenConfig {
            threads: (2, 3),
            ops: (2, 5),
            shape: Shape {
                fai: 1,
                locks: 1,
                tas: 1,
                swaps: 1,
                flags: 1,
                rf: 2,
                priv_slots: 2,
            },
            idioms: true,
        }
    }
}

/// Generates one case from a seed. Deterministic; the result always
/// passes [`FuzzCase::validate`].
pub fn generate(seed: u64, cfg: &GenConfig) -> FuzzCase {
    let mut rng = DetRng::new(seed ^ 0xF0_77_2E_5E);
    let lo = cfg.threads.0.clamp(1, MAX_THREADS as u8);
    let hi = cfg.threads.1.clamp(lo, MAX_THREADS as u8);
    let nthreads = rng.range(u64::from(lo), u64::from(hi) + 1) as usize;

    let max = cfg.shape;
    let draw = |rng: &mut DetRng, m: u8| -> u8 {
        if m == 0 {
            0
        } else {
            rng.range(0, u64::from(m) + 1) as u8
        }
    };
    let mut shape = Shape {
        fai: draw(&mut rng, max.fai),
        locks: draw(&mut rng, max.locks),
        tas: draw(&mut rng, max.tas),
        swaps: draw(&mut rng, max.swaps),
        // Flags need a waiter below the owner, so they need >= 2 threads.
        flags: if nthreads >= 2 {
            draw(&mut rng, max.flags)
        } else {
            0
        },
        rf: draw(&mut rng, max.rf),
        priv_slots: max.priv_slots.max(1),
    };
    if shape.fai + shape.locks + shape.tas + shape.swaps + shape.flags + shape.rf == 0 {
        // Guarantee some contention — an all-private program tests nothing.
        if max.rf > 0 {
            shape.rf = 1;
        } else if max.fai > 0 {
            shape.fai = 1;
        }
    }

    let mut threads: Vec<Vec<Op>> = vec![Vec::new(); nthreads];

    // Flag plumbing: owner thread per flag, sends placed up front so any
    // later thread may wait.
    let mut waitable: Vec<(u8, usize)> = Vec::new(); // (flag, owner)
    for f in 0..shape.flags {
        let owner = rng.below(nthreads - 1); // leave at least one waiter id
        threads[owner].push(Op::MsgSend {
            flag: f,
            value: rng.range(1, 1 << 12) as u16,
        });
        waitable.push((f, owner));
        // Each flag gets at least one waiter; more join by coin flip.
        let forced = rng.range(owner as u64 + 1, nthreads as u64) as usize;
        for (t, ops) in threads.iter_mut().enumerate().skip(owner + 1) {
            if t == forced || rng.chance(1, 2) {
                ops.push(Op::MsgWait { flag: f });
            }
        }
    }

    // Idiom injections: whole litmus-shaped groups from the shared pool.
    if cfg.idioms {
        // CoRR probe: one writer, one reader probing the same word twice.
        if shape.rf >= 1 && nthreads >= 2 && rng.chance(1, 2) {
            let word = rng.below(shape.rf as usize) as u8;
            let writer = rng.below(nthreads);
            let reader = (writer + 1 + rng.below(nthreads - 1)) % nthreads;
            threads[writer].push(Op::RfStore { word });
            threads[reader].push(Op::RfLoad2 {
                a: word,
                b: word,
                witness: true,
            });
        }
        // IRIW quad: two writers, two readers probing in opposite orders.
        if shape.rf >= 2 && nthreads >= 4 && rng.chance(1, 2) {
            let (x, y) = (0u8, 1u8);
            threads[0].push(Op::RfStore { word: x });
            threads[1].push(Op::RfStore { word: y });
            threads[2].push(Op::RfLoad2 {
                a: x,
                b: y,
                witness: true,
            });
            threads[3].push(Op::RfLoad2 {
                a: y,
                b: x,
                witness: true,
            });
        }
        // Lock convoy: every thread increments the same guarded counter
        // (the tatas litmus generalized).
        if shape.locks >= 1 && rng.chance(1, 2) {
            let lock = rng.below(shape.locks as usize) as u8;
            for ops in threads.iter_mut() {
                ops.push(Op::LockedAdd {
                    lock,
                    witness: rng.chance(1, 2),
                });
            }
        }
    }

    // Random filler.
    for (t, ops) in threads.iter_mut().enumerate() {
        let n = rng.range(u64::from(cfg.ops.0), u64::from(cfg.ops.1) + 1);
        for _ in 0..n {
            let op = random_op(&mut rng, &shape, &waitable, t);
            ops.push(op);
        }
    }

    // Shuffle each thread: op semantics are position-independent by
    // construction (see module docs), and shuffling decorrelates the
    // mandatory prefix from the filler.
    for ops in threads.iter_mut() {
        rng.shuffle(ops);
    }

    let case = FuzzCase {
        name: format!("gen-{seed:#x}"),
        seed,
        shape,
        threads,
    };
    debug_assert_eq!(case.validate(), Ok(()));
    case
}

/// Draws one filler op available to thread `t`.
fn random_op(rng: &mut DetRng, shape: &Shape, waitable: &[(u8, usize)], t: usize) -> Op {
    for _ in 0..16 {
        let kind = rng.below(14);
        let op = match kind {
            0 | 1 => Some(Op::PrivStore {
                slot: rng.below(shape.priv_slots as usize) as u8,
                value: rng.range(0, 1 << 12) as u16,
            }),
            2 | 3 => Some(Op::PrivLoad {
                slot: rng.below(shape.priv_slots as usize) as u8,
            }),
            4 | 5 if shape.fai > 0 => Some(Op::Fai {
                ctr: rng.below(shape.fai as usize) as u8,
                witness: rng.chance(1, 2),
            }),
            6 if shape.tas > 0 => Some(Op::Tas {
                word: rng.below(shape.tas as usize) as u8,
                witness: rng.chance(1, 2),
            }),
            7 if shape.swaps > 0 => Some(Op::Swap {
                word: rng.below(shape.swaps as usize) as u8,
                witness: rng.chance(1, 2),
            }),
            8 if shape.locks > 0 => Some(Op::LockedAdd {
                lock: rng.below(shape.locks as usize) as u8,
                witness: rng.chance(1, 2),
            }),
            9 if shape.rf > 0 => Some(Op::RfStore {
                word: rng.below(shape.rf as usize) as u8,
            }),
            10 if shape.rf > 0 => Some(Op::RfLoad2 {
                a: rng.below(shape.rf as usize) as u8,
                b: rng.below(shape.rf as usize) as u8,
                witness: rng.chance(1, 2),
            }),
            11 => {
                let candidates: Vec<u8> = waitable
                    .iter()
                    .filter(|&&(_, owner)| owner < t)
                    .map(|&(f, _)| f)
                    .collect();
                if candidates.is_empty() {
                    None
                } else {
                    Some(Op::MsgWait {
                        flag: candidates[rng.below(candidates.len())],
                    })
                }
            }
            12 => Some(Op::Fence),
            13 => Some(Op::SelfInv),
            _ => None,
        };
        if let Some(op) = op {
            return op;
        }
    }
    Op::Nop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_valid_and_deterministic() {
        for cfg in [GenConfig::default_pool(), GenConfig::small()] {
            for seed in 0..200u64 {
                let a = generate(seed, &cfg);
                let b = generate(seed, &cfg);
                assert_eq!(a, b, "seed {seed} must be reproducible");
                a.validate()
                    .unwrap_or_else(|e| panic!("seed {seed}: invalid case: {e}"));
                assert!(a.threads.len() <= MAX_THREADS);
            }
        }
    }

    #[test]
    fn pool_exercises_every_op_kind() {
        let cfg = GenConfig::default_pool();
        let mut seen = [false; 13];
        for seed in 0..400u64 {
            for ops in &generate(seed, &cfg).threads {
                for op in ops {
                    let k = match op {
                        Op::PrivStore { .. } => 0,
                        Op::PrivLoad { .. } => 1,
                        Op::Fai { .. } => 2,
                        Op::Tas { .. } => 3,
                        Op::Swap { .. } => 4,
                        Op::LockedAdd { .. } => 5,
                        Op::MsgSend { .. } => 6,
                        Op::MsgWait { .. } => 7,
                        Op::RfStore { .. } => 8,
                        Op::RfLoad2 { .. } => 9,
                        Op::Fence => 10,
                        Op::SelfInv => 11,
                        Op::Nop => 12,
                    };
                    seen[k] = true;
                }
            }
        }
        // Nop is a fallback and may legitimately never fire.
        for (k, &s) in seen.iter().enumerate().take(12) {
            assert!(s, "op kind {k} never generated in 400 seeds");
        }
    }
}
