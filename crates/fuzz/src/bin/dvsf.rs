//! `dvsf` — the fuzzer's command-line front end.
//!
//! ```text
//! dvsf gen <seed> [--small]                      print the generated .dvsf
//! dvsf run <file> [--mutation <tok>]             replay one case
//! dvsf shrink <file> [--mutation <tok>]          minimize a diverging case
//! dvsf hunt <start> <count> [--small] [--workers N] [--mutation <tok>]
//!                                                fuzz a seed range
//! ```
//!
//! Exit codes: 0 clean, 1 divergence found (`run`/`hunt`), 2 usage or
//! sick case. `shrink` exits 0 on success (the divergence is the point)
//! and 2 if the input does not diverge. Mutation tokens:
//! `dnv-skip-repoint`, `dnv-drop-xfer`, `mesi-skip-invalidate`,
//! `mesi-drop-ack`.

use dvs_fuzz::{
    generate, parse_mutation, run_batch, run_case, shrink, BatchConfig, CaseVerdict, FuzzCase,
    GenConfig, HarnessConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dvsf: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Pulls `--flag value` / bare `--flag` options out of `args`.
struct Opts {
    positional: Vec<String>,
    small: bool,
    workers: usize,
    mutation: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        small: false,
        workers: 1,
        mutation: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => o.small = true,
            "--workers" => {
                o.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "--workers needs a number")?;
            }
            "--mutation" => {
                o.mutation = Some(it.next().ok_or("--mutation needs a token")?.clone());
            }
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => o.positional.push(a.clone()),
        }
    }
    Ok(o)
}

fn harness_for(o: &Opts) -> Result<HarnessConfig, String> {
    let mut h = HarnessConfig::default();
    if let Some(tok) = &o.mutation {
        h.mutation = Some(parse_mutation(tok)?);
    }
    Ok(h)
}

fn gen_for(o: &Opts) -> GenConfig {
    if o.small {
        GenConfig::small()
    } else {
        GenConfig::default_pool()
    }
}

fn parse_seed(tok: &str) -> Result<u64, String> {
    let hex = tok.strip_prefix("0x");
    match hex {
        Some(h) => u64::from_str_radix(h, 16),
        None => tok.parse(),
    }
    .map_err(|_| format!("bad seed {tok:?}"))
}

fn load_case(path: &str) -> Result<FuzzCase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    FuzzCase::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("usage: dvsf <gen|run|shrink|hunt> ...".into());
    };
    let o = parse_opts(rest)?;
    match cmd.as_str() {
        "gen" => {
            let [seed] = o.positional.as_slice() else {
                return Err("usage: dvsf gen <seed> [--small]".into());
            };
            let case = generate(parse_seed(seed)?, &gen_for(&o));
            print!("{}", case.render());
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let [path] = o.positional.as_slice() else {
                return Err("usage: dvsf run <file.dvsf> [--mutation <tok>]".into());
            };
            let case = load_case(path)?;
            match run_case(&case, &harness_for(&o)?) {
                CaseVerdict::Pass { ref_fnv, instrs } => {
                    println!("pass ref={ref_fnv:016x} instrs={instrs}");
                    Ok(ExitCode::SUCCESS)
                }
                CaseVerdict::Sick { reason } => Err(format!("sick case: {reason}")),
                CaseVerdict::Diverged { instrs, divergence } => {
                    println!("diverged {divergence} instrs={instrs}");
                    Ok(ExitCode::from(1))
                }
            }
        }
        "shrink" => {
            let [path] = o.positional.as_slice() else {
                return Err("usage: dvsf shrink <file.dvsf> [--mutation <tok>]".into());
            };
            let case = load_case(path)?;
            let h = harness_for(&o)?;
            if !run_case(&case, &h).is_divergent() {
                return Err("input case does not diverge; nothing to shrink".into());
            }
            let out = shrink(&case, |c| run_case(c, &h).is_divergent());
            eprintln!(
                "shrunk {} -> {} instrs ({} attempts, {} accepted)",
                out.initial_instrs, out.final_instrs, out.attempts, out.accepted
            );
            print!("{}", out.case.render());
            Ok(ExitCode::SUCCESS)
        }
        "hunt" => {
            let [start, count] = o.positional.as_slice() else {
                return Err(
                    "usage: dvsf hunt <start-seed> <count> [--small] [--workers N] \
                     [--mutation <tok>]"
                        .into(),
                );
            };
            let cfg = BatchConfig {
                seed_start: parse_seed(start)?,
                count: count.parse().map_err(|_| "bad count")?,
                gen: gen_for(&o),
                harness: harness_for(&o)?,
                workers: o.workers,
            };
            let report = run_batch(&cfg);
            println!(
                "total={} passed={} sick={} panicked={} diverged={} digest={:016x}",
                report.total,
                report.passed,
                report.sick,
                report.panicked,
                report.diverged.len(),
                report.digest
            );
            for d in &report.diverged {
                println!("  {}", d.line);
            }
            Ok(
                if report.diverged.is_empty() && report.sick == 0 && report.panicked == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                },
            )
        }
        _ => Err(format!("unknown command {cmd:?}")),
    }
}
