//! Delta-debugging shrinker: reduces a diverging [`FuzzCase`] to a
//! minimal reproducer.
//!
//! Four reductions run in rounds until a fixpoint:
//!
//! 1. **Thread removal** — drop one whole thread (waits on flags whose
//!    sender lived there are co-removed, so candidates stay valid).
//! 2. **Op removal** — ddmin-style chunked deletion within each thread,
//!    halving the chunk size down to single ops. Deleting a `MsgSend`
//!    co-removes every wait on its flag.
//! 3. **Witness stripping** — clear witness flags one op at a time (each
//!    strip removes the observation plumbing from the lowering).
//! 4. **Address merging** — within one location class, redirect a used
//!    index onto the class's smallest used index, collapsing contention
//!    onto fewer lines. Flags are never merged (one-sender rule).
//!
//! A candidate is accepted iff it still [`FuzzCase::validate`]s *and* the
//! caller's `still_failing` predicate holds — typically "the differential
//! harness still reports a divergence". Invalid candidates are rejected
//! before the predicate ever runs, so the (expensive) harness only sees
//! runnable programs. A final compaction pass renumbers each class's used
//! indices densely and shrinks the [`Shape`](crate::case::Shape) to match,
//! so committed reproducers carry no dead locations.

use crate::case::{FuzzCase, Op};

/// What the shrinker did to one case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized case (equal to the input if nothing could be removed).
    pub case: FuzzCase,
    /// Lowered instruction count before shrinking.
    pub initial_instrs: usize,
    /// Lowered instruction count after shrinking.
    pub final_instrs: usize,
    /// Candidates tried (validity rejections included).
    pub attempts: usize,
    /// Candidates accepted.
    pub accepted: usize,
}

impl ShrinkOutcome {
    /// `final_instrs / initial_instrs` — the headline shrink metric.
    pub fn ratio(&self) -> f64 {
        if self.initial_instrs == 0 {
            1.0
        } else {
            self.final_instrs as f64 / self.initial_instrs as f64
        }
    }
}

/// The location classes address merging operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Fai,
    Lock,
    Tas,
    Swap,
    Rf,
    Priv,
    /// Flags renumber during compaction but never merge.
    Flag,
}

const MERGEABLE: [Class; 6] = [
    Class::Fai,
    Class::Lock,
    Class::Tas,
    Class::Swap,
    Class::Rf,
    Class::Priv,
];

/// Shrinks `case` while `still_failing` holds. The input case itself must
/// satisfy the predicate (it is the fallback result).
pub fn shrink<F>(case: &FuzzCase, still_failing: F) -> ShrinkOutcome
where
    F: Fn(&FuzzCase) -> bool,
{
    let initial_instrs = case.lower().instr_count;
    let mut best = case.clone();
    let mut attempts = 0usize;
    let mut accepted = 0usize;
    // Accepts `cand` into `best` if it is valid and still failing.
    let mut consider = |best: &mut FuzzCase, cand: FuzzCase| -> bool {
        attempts += 1;
        if cand.validate().is_ok() && still_failing(&cand) {
            *best = cand;
            accepted += 1;
            true
        } else {
            false
        }
    };

    loop {
        let before = best.clone();

        // 1. Thread removal.
        let mut t = 0;
        while best.threads.len() > 1 && t < best.threads.len() {
            let cand = remove_thread(&best, t);
            if !consider(&mut best, cand) {
                t += 1;
            }
        }

        // 2. Chunked op removal (ddmin over each thread).
        for t in 0..best.threads.len() {
            let mut chunk = best.threads[t].len().max(1).next_power_of_two();
            loop {
                let mut i = 0;
                while i < best.threads[t].len() {
                    // On success the list shrank under us; retry at the
                    // same offset with the same chunk.
                    let cand = remove_ops(&best, t, i, chunk);
                    if !consider(&mut best, cand) {
                        i += chunk;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }

        // 3. Witness stripping.
        for t in 0..best.threads.len() {
            let mut i = 0;
            while i < best.threads[t].len() {
                if let Some(stripped) = best.threads[t][i].without_witness() {
                    let mut cand = best.clone();
                    cand.threads[t][i] = stripped;
                    consider(&mut best, cand);
                }
                i += 1;
            }
        }

        // 4. Address merging within each class.
        for class in MERGEABLE {
            let used = used_indices(&best, class);
            if let Some(&target) = used.first() {
                for &from in used.iter().skip(1) {
                    let cand = remap(&best, class, from, target);
                    consider(&mut best, cand);
                }
            }
        }

        if best == before {
            break;
        }
    }

    // Renumbering is semantics-preserving, but run it through the
    // predicate anyway — defense in depth for a committed reproducer.
    let compacted = compact(&best);
    consider(&mut best, compacted);

    let final_instrs = best.lower().instr_count;
    ShrinkOutcome {
        case: best,
        initial_instrs,
        final_instrs,
        attempts,
        accepted,
    }
}

/// Drops thread `t`, plus every wait on a flag whose sender it held.
fn remove_thread(case: &FuzzCase, t: usize) -> FuzzCase {
    let mut cand = case.clone();
    let removed = cand.threads.remove(t);
    let orphaned: Vec<u8> = removed
        .iter()
        .filter_map(|op| match op {
            Op::MsgSend { flag, .. } => Some(*flag),
            _ => None,
        })
        .collect();
    for ops in cand.threads.iter_mut() {
        ops.retain(|op| !matches!(op, Op::MsgWait { flag } if orphaned.contains(flag)));
    }
    cand
}

/// Drops `ops[i..i+chunk]` from thread `t`, co-removing waits on any flag
/// whose `MsgSend` fell in the deleted range.
fn remove_ops(case: &FuzzCase, t: usize, i: usize, chunk: usize) -> FuzzCase {
    let mut cand = case.clone();
    let end = (i + chunk).min(cand.threads[t].len());
    let removed: Vec<Op> = cand.threads[t].drain(i..end).collect();
    let orphaned: Vec<u8> = removed
        .iter()
        .filter_map(|op| match op {
            Op::MsgSend { flag, .. } => Some(*flag),
            _ => None,
        })
        .collect();
    if !orphaned.is_empty() {
        for ops in cand.threads.iter_mut() {
            ops.retain(|op| !matches!(op, Op::MsgWait { flag } if orphaned.contains(flag)));
        }
    }
    cand
}

/// The class index an op addresses, if it belongs to `class`.
fn op_indices(op: &Op, class: Class) -> Vec<u8> {
    match (class, *op) {
        (Class::Fai, Op::Fai { ctr, .. }) => vec![ctr],
        (Class::Lock, Op::LockedAdd { lock, .. }) => vec![lock],
        (Class::Tas, Op::Tas { word, .. }) => vec![word],
        (Class::Swap, Op::Swap { word, .. }) => vec![word],
        (Class::Rf, Op::RfStore { word }) => vec![word],
        (Class::Rf, Op::RfLoad2 { a, b, .. }) => vec![a, b],
        (Class::Priv, Op::PrivStore { slot, .. }) | (Class::Priv, Op::PrivLoad { slot }) => {
            vec![slot]
        }
        (Class::Flag, Op::MsgSend { flag, .. }) | (Class::Flag, Op::MsgWait { flag }) => {
            vec![flag]
        }
        _ => Vec::new(),
    }
}

/// Rewrites every index of `class` through `f`.
fn map_indices(case: &FuzzCase, class: Class, f: &dyn Fn(u8) -> u8) -> FuzzCase {
    let mut cand = case.clone();
    for ops in cand.threads.iter_mut() {
        for op in ops.iter_mut() {
            *op = match (class, *op) {
                (Class::Fai, Op::Fai { ctr, witness }) => Op::Fai {
                    ctr: f(ctr),
                    witness,
                },
                (Class::Lock, Op::LockedAdd { lock, witness }) => Op::LockedAdd {
                    lock: f(lock),
                    witness,
                },
                (Class::Tas, Op::Tas { word, witness }) => Op::Tas {
                    word: f(word),
                    witness,
                },
                (Class::Swap, Op::Swap { word, witness }) => Op::Swap {
                    word: f(word),
                    witness,
                },
                (Class::Rf, Op::RfStore { word }) => Op::RfStore { word: f(word) },
                (Class::Rf, Op::RfLoad2 { a, b, witness }) => Op::RfLoad2 {
                    a: f(a),
                    b: f(b),
                    witness,
                },
                (Class::Priv, Op::PrivStore { slot, value }) => Op::PrivStore {
                    slot: f(slot),
                    value,
                },
                (Class::Priv, Op::PrivLoad { slot }) => Op::PrivLoad { slot: f(slot) },
                (Class::Flag, Op::MsgSend { flag, value }) => Op::MsgSend {
                    flag: f(flag),
                    value,
                },
                (Class::Flag, Op::MsgWait { flag }) => Op::MsgWait { flag: f(flag) },
                (_, other) => other,
            };
        }
    }
    cand
}

/// The sorted set of `class` indices the case actually uses.
fn used_indices(case: &FuzzCase, class: Class) -> Vec<u8> {
    let mut used: Vec<u8> = case
        .threads
        .iter()
        .flatten()
        .flat_map(|op| op_indices(op, class))
        .collect();
    used.sort_unstable();
    used.dedup();
    used
}

/// Redirects every use of `class` index `from` onto `to`.
fn remap(case: &FuzzCase, class: Class, from: u8, to: u8) -> FuzzCase {
    map_indices(case, class, &|i| if i == from { to } else { i })
}

/// Renumbers every class's used indices densely from 0 and shrinks the
/// shape to the used counts. Pure renaming: semantics unchanged.
fn compact(case: &FuzzCase) -> FuzzCase {
    let mut cand = case.clone();
    for class in [
        Class::Fai,
        Class::Lock,
        Class::Tas,
        Class::Swap,
        Class::Rf,
        Class::Priv,
        Class::Flag,
    ] {
        let used = used_indices(&cand, class);
        let dense = |i: u8| used.iter().position(|&u| u == i).unwrap_or(0) as u8;
        cand = map_indices(&cand, class, &dense);
        let n = used.len() as u8;
        match class {
            Class::Fai => cand.shape.fai = n,
            Class::Lock => cand.shape.locks = n,
            Class::Tas => cand.shape.tas = n,
            Class::Swap => cand.shape.swaps = n,
            Class::Rf => cand.shape.rf = n,
            Class::Priv => cand.shape.priv_slots = n,
            Class::Flag => cand.shape.flags = n,
        }
    }
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    /// With an always-true predicate the shrinker must drive any case to
    /// its floor: one thread, zero ops (everything is removable).
    #[test]
    fn always_failing_shrinks_to_the_floor() {
        for seed in 0..20u64 {
            let case = generate(seed, &GenConfig::small());
            let out = shrink(&case, |_| true);
            assert_eq!(out.case.threads.len(), 1, "seed {seed}");
            assert!(out.case.threads[0].is_empty(), "seed {seed}");
            assert!(out.final_instrs <= out.initial_instrs);
            assert_eq!(out.case.validate(), Ok(()));
        }
    }

    /// With an always-false predicate nothing is accepted and the case is
    /// returned untouched.
    #[test]
    fn never_failing_returns_input() {
        let case = generate(7, &GenConfig::default_pool());
        let out = shrink(&case, |_| false);
        assert_eq!(out.case, case);
        assert_eq!(out.accepted, 0);
        assert_eq!(out.initial_instrs, out.final_instrs);
    }

    /// A predicate demanding a specific op keeps that op while everything
    /// else shrinks away.
    #[test]
    fn preserves_the_failing_ingredient() {
        for seed in 0..20u64 {
            let case = generate(seed, &GenConfig::default_pool());
            let has_fai = |c: &FuzzCase| {
                c.threads
                    .iter()
                    .flatten()
                    .any(|op| matches!(op, Op::Fai { .. }))
            };
            if !has_fai(&case) {
                continue;
            }
            let out = shrink(&case, has_fai);
            assert!(has_fai(&out.case), "seed {seed}");
            let fais = out
                .case
                .threads
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Fai { .. }))
                .count();
            assert_eq!(fais, 1, "seed {seed}: exactly one fai must survive");
            assert_eq!(out.case.threads.len(), 1, "seed {seed}");
        }
    }
}
