//! The barrier kernels: binary tree, n-ary tree (fan-in 4 / fan-out 2) and
//! centralized sense-reversing barriers, in balanced and unbalanced variants
//! (§5.3.1: "a barrier kernel executes two barrier instances around dummy
//! computation"; the unbalanced variants use a much wider dummy-compute
//! range, which the caller selects through `KernelParams::nonsynch`).
//!
//! Each iteration doubles as a correctness probe: every thread publishes its
//! round number before arriving, and thread 0 verifies all slots after the
//! barrier — a barrier that releases early fails the in-VM assertion.

use crate::sync::{emit_prologue, CentralBarrier, TreeBarrier, EPOCH, ITER, ITERS, TID};
use crate::{BarrierKind, KernelParams, Workload};
use dvs_mem::{Addr, LayoutBuilder, LINE_BYTES};
use dvs_stats::TimeComponent;
use dvs_vm::isa::{Cond, Reg};
use dvs_vm::Asm;

const ROUND: Reg = Reg(12);
const P10: Reg = Reg(10);
const T13: Reg = Reg(13);

enum AnyBarrier {
    Tree(TreeBarrier),
    Central(CentralBarrier),
}

impl AnyBarrier {
    fn emit(&self, a: &mut Asm, tid: usize) {
        match self {
            AnyBarrier::Tree(t) => t.emit(a, tid),
            AnyBarrier::Central(c) => c.emit(a),
        }
    }
}

/// Builds a barrier workload.
pub fn build(kind: BarrierKind, p: &KernelParams) -> Workload {
    let mut lb = LayoutBuilder::new();
    let sync = lb.region("sync");
    let data = lb.region("data");
    let slots = lb.segment("slots", p.threads as u64 * LINE_BYTES, data);
    let barrier = match kind {
        BarrierKind::Tree | BarrierKind::Nary => {
            let (fan_in, fan_out) = if kind == BarrierKind::Tree {
                (2, 2)
            } else {
                (4, 2)
            };
            AnyBarrier::Tree(TreeBarrier {
                arrive: lb.segment("arrive", p.threads as u64 * LINE_BYTES, sync),
                go: lb.segment("go", p.threads as u64 * LINE_BYTES, sync),
                fan_in,
                fan_out,
                n: p.threads,
                data_region: Some(data),
            })
        }
        BarrierKind::Central => AnyBarrier::Central(CentralBarrier {
            count: lb.sync_var("count", sync, p.padded_locks),
            sense: lb.sync_var("sense", sync, p.padded_locks),
            n: p.threads,
            data_region: Some(data),
        }),
    };

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("barrier-kernel");
            emit_prologue(&mut a, p.iters);
            a.movi(EPOCH, 0);
            let top = a.here();
            // Publish my round (ITER + 1), then the first barrier instance.
            a.addi(ROUND, ITER, 1);
            a.movi(P10, slots.raw());
            a.shl(T13, TID, 6);
            a.add(P10, P10, T13);
            a.store(ROUND, P10, 0);
            barrier.emit(&mut a, tid);
            if tid == 0 {
                // Integrity probe: everyone must have published this round.
                for t in 0..p.threads {
                    a.movi(P10, slots.raw() + t as u64 * LINE_BYTES);
                    a.load(T13, P10, 0);
                    a.assert_cond(
                        Cond::Eq,
                        T13,
                        ROUND,
                        "barrier released before all threads arrived",
                    );
                }
            }
            // Dummy computation between the two barrier instances.
            a.rand_delay(p.nonsynch.0, p.nonsynch.1, TimeComponent::NonSynch);
            barrier.emit(&mut a, tid);
            // Inter-iteration dummy computation.
            a.rand_delay(p.nonsynch.0, p.nonsynch.1, TimeComponent::NonSynch);
            a.addi(ITER, ITER, 1);
            a.blt(ITER, ITERS, top);
            a.halt();
            a.build()
        })
        .collect();

    let threads = p.threads;
    let iters = p.iters;
    Workload::new(
        lb.build(),
        programs,
        Vec::new(),
        Vec::new(),
        Box::new(move |read| {
            for t in 0..threads {
                let got = read(Addr::new(slots.raw() + t as u64 * LINE_BYTES));
                if got != iters {
                    return Err(format!(
                        "thread {t} published round {got}, expected {iters}"
                    ));
                }
            }
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockbased::tests::run_on_reference;
    use crate::KernelId;

    fn smoke(kind: BarrierKind, threads: usize) {
        let p = KernelParams::smoke(threads);
        let w = crate::build(KernelId::Barrier(kind, false), &p);
        run_on_reference(&w, 10_000_000);
    }

    #[test]
    fn tree_barrier_kernel_reference() {
        smoke(BarrierKind::Tree, 4);
    }

    #[test]
    fn tree_barrier_kernel_odd_threads() {
        smoke(BarrierKind::Tree, 5);
    }

    #[test]
    fn nary_barrier_kernel_reference() {
        smoke(BarrierKind::Nary, 6);
    }

    #[test]
    fn central_barrier_kernel_reference() {
        smoke(BarrierKind::Central, 4);
    }

    #[test]
    fn single_thread_barrier_degenerates() {
        smoke(BarrierKind::Tree, 1);
        smoke(BarrierKind::Central, 1);
    }
}
