//! Reusable synchronization-construct emitters.
//!
//! These mirror the synchronization routines the paper instruments ("we
//! inserted region-based static self-invalidation instructions ... in the
//! POSIX thread library synchronization routines"): every acquire-side
//! construct ends with a `SelfInv` of the protected data region (a no-op on
//! MESI), and every release-side construct starts with a `Fence` so
//! non-blocking data writes are globally performed before the release is
//! visible.
//!
//! # Register conventions
//!
//! | register | meaning |
//! |---|---|
//! | `r31` | thread id |
//! | `r30` | thread count |
//! | `r29` | iteration counter |
//! | `r28` | iteration limit |
//! | `r27` | constant 0 |
//! | `r26` | constant 1 |
//! | `r25`, `r24` | array-lock ticket indices (locks A and B) |
//! | `r23` | barrier epoch |
//! | `r22` | software-backoff current delay |
//! | `r16..r21` | kernel accumulators |
//! | `r0..r15` | scratch (clobbered by emitters) |

use dvs_mem::layout::Region;
use dvs_mem::{Addr, LINE_BYTES, WORD_BYTES};
use dvs_stats::TimeComponent;
use dvs_vm::isa::{Cond, PhaseChange, Reg};
use dvs_vm::Asm;

/// Thread id.
pub const TID: Reg = Reg(31);
/// Thread count.
pub const NTHREADS: Reg = Reg(30);
/// Iteration counter.
pub const ITER: Reg = Reg(29);
/// Iteration limit.
pub const ITERS: Reg = Reg(28);
/// Constant zero.
pub const ZERO: Reg = Reg(27);
/// Constant one.
pub const ONE: Reg = Reg(26);
/// Array-lock ticket index, lock A.
pub const TICKET_A: Reg = Reg(25);
/// Array-lock ticket index, lock B.
pub const TICKET_B: Reg = Reg(24);
/// Barrier epoch.
pub const EPOCH: Reg = Reg(23);
/// Software-backoff delay.
pub const BACKOFF: Reg = Reg(22);

/// Software exponential backoff floor (paper: delays in [128, 2048)).
pub const SW_BACKOFF_MIN: u64 = 128;
/// Software exponential backoff ceiling.
pub const SW_BACKOFF_MAX: u64 = 2048;

const A0: Reg = Reg(0);
const A1: Reg = Reg(1);
const ADDR: Reg = Reg(15);

/// Emits the standard prologue: ids, constants, iteration setup, backoff
/// floor.
pub fn emit_prologue(a: &mut Asm, iters: u64) {
    a.tid(TID)
        .nthreads(NTHREADS)
        .movi(ZERO, 0)
        .movi(ONE, 1)
        .movi(ITER, 0)
        .movi(ITERS, iters)
        .movi(BACKOFF, SW_BACKOFF_MIN);
}

/// Emits the software exponential backoff: stall for the current delay, then
/// double it (capped). Call [`emit_sw_backoff_reset`] on success.
pub fn emit_sw_backoff(a: &mut Asm) {
    a.delay_reg(BACKOFF, TimeComponent::SwBackoff);
    a.shl(BACKOFF, BACKOFF, 1);
    let capped = a.label();
    a.movi(A0, SW_BACKOFF_MAX);
    a.blt(BACKOFF, A0, capped);
    a.mov(BACKOFF, A0);
    a.bind(capped);
}

/// Resets the software backoff to its floor.
pub fn emit_sw_backoff_reset(a: &mut Asm) {
    a.movi(BACKOFF, SW_BACKOFF_MIN);
}

/// A Test-and-Test-and-Set lock.
#[derive(Debug, Clone, Copy)]
pub struct TatasLock {
    /// The lock word.
    pub lock: Addr,
    /// Region self-invalidated on acquire (the data the lock protects).
    pub data_region: Option<Region>,
    /// Insert software exponential backoff after a failed Test-and-Set.
    pub sw_backoff: bool,
}

impl TatasLock {
    /// Emits the acquire loop (clobbers r0, r15; r22 if backoff enabled).
    pub fn emit_acquire(&self, a: &mut Asm) {
        let retest = a.label();
        let got = a.label();
        a.bind(retest);
        a.movi(ADDR, self.lock.raw());
        // Test: spin (as a synchronization read) until the lock looks free.
        a.spin_until(A0, ADDR, 0, Cond::Eq, ZERO);
        // Test-and-Set: the linearization point on success.
        a.tas(A0, ADDR, 0);
        a.beq(A0, ZERO, got);
        if self.sw_backoff {
            emit_sw_backoff(a);
        }
        a.jmp(retest);
        a.bind(got);
        if self.sw_backoff {
            emit_sw_backoff_reset(a);
        }
        if let Some(r) = self.data_region {
            a.self_inv(r);
        }
    }

    /// Emits the release (clobbers r15).
    pub fn emit_release(&self, a: &mut Asm) {
        a.fence();
        a.movi(ADDR, self.lock.raw());
        a.stores(ZERO, ADDR, 0);
    }
}

/// An Anderson array (queue) lock: waiters spin on distinct, line-padded
/// slots handed out by a fetch-and-increment ticket counter.
#[derive(Debug, Clone, Copy)]
pub struct ArrayLock {
    /// Base of the slot array.
    pub slots: Addr,
    /// The ticket counter.
    pub ticket: Addr,
    /// Number of slots (≥ thread count).
    pub nslots: u64,
    /// Byte stride between slots (64 when padded, 8 when not).
    pub stride: u64,
    /// Region self-invalidated on acquire.
    pub data_region: Option<Region>,
    /// Register that keeps the acquired slot index until release.
    pub idx: Reg,
}

impl ArrayLock {
    /// The initial memory values: slot 0 starts "available".
    pub fn init(&self) -> Vec<(Addr, u64)> {
        vec![(self.slots, 1)]
    }

    fn shift(&self) -> u8 {
        assert!(
            self.stride == LINE_BYTES || self.stride == WORD_BYTES,
            "slot stride must be a line or a word"
        );
        self.stride.trailing_zeros() as u8
    }

    /// Emits the acquire (clobbers r0, r1, r15; writes `self.idx`).
    pub fn emit_acquire(&self, a: &mut Asm) {
        a.movi(ADDR, self.ticket.raw());
        a.fai(A0, ADDR, 0, ONE);
        a.movi(A1, self.nslots);
        a.rem(self.idx, A0, A1);
        a.shl(A0, self.idx, self.shift());
        a.movi(ADDR, self.slots.raw());
        a.add(ADDR, ADDR, A0);
        // The acquire linearization: my slot becomes 1.
        a.spin_until(A0, ADDR, 0, Cond::Eq, ONE);
        // Reset the slot for its next use (the extra write the paper notes
        // MESI pays an ownership request for, while DeNovo hits — the slot
        // is already registered by the acquiring read).
        a.stores(ZERO, ADDR, 0);
        if let Some(r) = self.data_region {
            a.self_inv(r);
        }
    }

    /// Emits the release: hand the lock to the next slot (clobbers r0, r1,
    /// r15).
    pub fn emit_release(&self, a: &mut Asm) {
        a.fence();
        a.addi(A0, self.idx, 1);
        a.movi(A1, self.nslots);
        a.rem(A0, A0, A1);
        a.shl(A0, A0, self.shift());
        a.movi(ADDR, self.slots.raw());
        a.add(ADDR, ADDR, A0);
        a.stores(ONE, ADDR, 0);
    }
}

/// A static tree barrier with configurable arrival fan-in and departure
/// fan-out, using epoch numbers instead of sense reversal (slot `i` holds
/// the last epoch thread `i` arrived at / was released for).
#[derive(Debug, Clone, Copy)]
pub struct TreeBarrier {
    /// Base of the per-thread arrival flags (line-padded).
    pub arrive: Addr,
    /// Base of the per-thread departure flags (line-padded).
    pub go: Addr,
    /// Arrival fan-in (children per node).
    pub fan_in: usize,
    /// Departure fan-out.
    pub fan_out: usize,
    /// Thread count.
    pub n: usize,
    /// Region self-invalidated on exit.
    pub data_region: Option<Region>,
}

impl TreeBarrier {
    fn children(base: usize, fan: usize, n: usize) -> impl Iterator<Item = usize> {
        (1..=fan)
            .map(move |k| base * fan + k)
            .filter(move |&c| c < n)
    }

    /// Emits one barrier episode for thread `tid` (clobbers r0, r15; bumps
    /// the `EPOCH` register).
    pub fn emit(&self, a: &mut Asm, tid: usize) {
        a.addi(EPOCH, EPOCH, 1);
        a.fence();
        // Arrival: gather children, then signal the parent.
        for c in Self::children(tid, self.fan_in, self.n) {
            a.movi(ADDR, self.arrive.raw() + c as u64 * LINE_BYTES);
            a.spin_until(A0, ADDR, 0, Cond::Eq, EPOCH);
        }
        if tid != 0 {
            a.movi(ADDR, self.arrive.raw() + tid as u64 * LINE_BYTES);
            a.stores(EPOCH, ADDR, 0);
            // Departure: wait for my release, then release my subtree.
            a.movi(ADDR, self.go.raw() + tid as u64 * LINE_BYTES);
            a.spin_until(A0, ADDR, 0, Cond::Eq, EPOCH);
        }
        for d in Self::children(tid, self.fan_out, self.n) {
            a.movi(ADDR, self.go.raw() + d as u64 * LINE_BYTES);
            a.stores(EPOCH, ADDR, 0);
        }
        if let Some(r) = self.data_region {
            a.self_inv(r);
        }
    }
}

/// A centralized sense-reversing barrier (epoch-numbered sense).
#[derive(Debug, Clone, Copy)]
pub struct CentralBarrier {
    /// The arrived-thread counter.
    pub count: Addr,
    /// The release word (holds the epoch of the last completed barrier).
    pub sense: Addr,
    /// Thread count.
    pub n: usize,
    /// Region self-invalidated on exit.
    pub data_region: Option<Region>,
}

impl CentralBarrier {
    /// Emits one barrier episode (clobbers r0, r1, r15; bumps `EPOCH`).
    pub fn emit(&self, a: &mut Asm) {
        a.addi(EPOCH, EPOCH, 1);
        a.fence();
        a.movi(ADDR, self.count.raw());
        a.fai(A0, ADDR, 0, ONE);
        a.movi(A1, self.n as u64 - 1);
        let wait = a.label();
        let done = a.label();
        a.bne(A0, A1, wait);
        // Last arriver: reset the counter, then release everyone.
        a.stores(ZERO, ADDR, 0);
        a.movi(ADDR, self.sense.raw());
        a.stores(EPOCH, ADDR, 0);
        a.jmp(done);
        a.bind(wait);
        a.movi(ADDR, self.sense.raw());
        a.spin_until(A0, ADDR, 0, Cond::Eq, EPOCH);
        a.bind(done);
        if let Some(r) = self.data_region {
            a.self_inv(r);
        }
    }
}

/// Emits the end-of-kernel barrier used by every non-barrier kernel (a
/// binary tree barrier), attributing the wait to the barrier-stall
/// component.
pub fn emit_end_barrier(a: &mut Asm, tid: usize, barrier: &TreeBarrier) {
    a.phase(PhaseChange::BarrierWait);
    barrier.emit(a, tid);
    a.phase(PhaseChange::Normal);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_mem::LayoutBuilder;
    use dvs_vm::reference::RefMachine;

    /// Mutual exclusion witness: inside the critical section each thread
    /// writes its id to `owner`, delays, re-reads, and asserts it is
    /// unchanged.
    fn lock_mutex_program(
        tid_check: bool,
        lock: TatasLock,
        owner: Addr,
        counter: Addr,
        iters: u64,
    ) -> dvs_vm::Program {
        let mut a = Asm::new("mutex");
        emit_prologue(&mut a, iters);
        let top = a.here();
        lock.emit_acquire(&mut a);
        // CS: owner = tid; counter++ (data ops).
        a.movi(Reg(10), owner.raw());
        a.store(TID, Reg(10), 0);
        a.movi(Reg(11), counter.raw());
        a.load(Reg(12), Reg(11), 0);
        a.addi(Reg(12), Reg(12), 1);
        a.store(Reg(12), Reg(11), 0);
        a.load(Reg(13), Reg(10), 0);
        if tid_check {
            a.assert_cond(Cond::Eq, Reg(13), TID, "mutual exclusion violated");
        }
        lock.emit_release(&mut a);
        a.addi(ITER, ITER, 1);
        a.blt(ITER, ITERS, top);
        a.halt();
        a.build()
    }

    #[test]
    fn tatas_lock_provides_mutual_exclusion_on_reference() {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let lock = TatasLock {
            lock: lb.sync_var("lock", sync, true),
            data_region: Some(data),
            sw_backoff: false,
        };
        let owner = lb.segment("owner", 8, data);
        let counter = lb.segment("counter", 8, data);
        let programs = (0..4)
            .map(|_| lock_mutex_program(true, lock, owner, counter, 10))
            .collect::<Vec<_>>();
        let mut m = RefMachine::new(programs);
        m.run(1_000_000).expect("mutual exclusion holds");
        assert_eq!(m.memory().read_word(counter.word()), 40);
    }

    #[test]
    fn array_lock_provides_mutual_exclusion_on_reference() {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let alock = ArrayLock {
            slots: lb.segment("slots", 8 * LINE_BYTES, sync),
            ticket: lb.sync_var("ticket", sync, true),
            nslots: 8,
            stride: LINE_BYTES,
            data_region: Some(data),
            idx: TICKET_A,
        };
        let owner = lb.segment("owner", 8, data);
        let counter = lb.segment("counter", 8, data);
        let make = || {
            let mut a = Asm::new("array-mutex");
            emit_prologue(&mut a, 10);
            let top = a.here();
            alock.emit_acquire(&mut a);
            a.movi(Reg(10), owner.raw());
            a.store(TID, Reg(10), 0);
            a.movi(Reg(11), counter.raw());
            a.load(Reg(12), Reg(11), 0);
            a.addi(Reg(12), Reg(12), 1);
            a.store(Reg(12), Reg(11), 0);
            a.load(Reg(13), Reg(10), 0);
            a.assert_cond(
                Cond::Eq,
                Reg(13),
                TID,
                "array-lock mutual exclusion violated",
            );
            alock.emit_release(&mut a);
            a.addi(ITER, ITER, 1);
            a.blt(ITER, ITERS, top);
            a.halt();
            a.build()
        };
        let programs = (0..4).map(|_| make()).collect::<Vec<_>>();
        let mut m = RefMachine::new(programs);
        for (addr, v) in alock.init() {
            m.memory_mut().write_word(addr.word(), v);
        }
        m.run(1_000_000).expect("mutual exclusion holds");
        assert_eq!(m.memory().read_word(counter.word()), 40);
    }

    /// Barrier integrity: each thread increments a private slot each round;
    /// after the barrier, thread 0 asserts every slot reached the round.
    fn barrier_program(
        n: usize,
        tid: usize,
        rounds: u64,
        slots: Addr,
        emit_barrier: &dyn Fn(&mut Asm, usize),
    ) -> dvs_vm::Program {
        let mut a = Asm::new("barrier-check");
        emit_prologue(&mut a, rounds);
        a.movi(EPOCH, 0);
        let top = a.here();
        // slot[tid] = iter + 1 (data store).
        a.movi(Reg(10), slots.raw());
        a.shl(Reg(11), TID, 6);
        a.add(Reg(10), Reg(10), Reg(11));
        a.addi(Reg(12), ITER, 1);
        a.store(Reg(12), Reg(10), 0);
        emit_barrier(&mut a, tid);
        if tid == 0 {
            // A fast thread may already have started the next round (there
            // is only one barrier per round here), so the invariant is
            // slot >= round: nobody may still be *behind*.
            for t in 0..n {
                a.movi(Reg(10), slots.raw() + t as u64 * 64);
                a.load(Reg(13), Reg(10), 0);
                a.assert_cond(
                    Cond::Ge,
                    Reg(13),
                    Reg(12),
                    "barrier released before all arrived",
                );
            }
        }
        a.addi(ITER, ITER, 1);
        a.blt(ITER, ITERS, top);
        a.halt();
        a.build()
    }

    /// Builds the probe slots and runs the programs. The caller constructs
    /// the barrier from the SAME layout builder so nothing aliases.
    fn check_barrier(mut lb: LayoutBuilder, emit: impl Fn(&mut Asm, usize), n: usize) {
        let data = lb.region("probe");
        let slots = lb.segment("slots", n as u64 * 64, data);
        let _layout = lb.build(); // validates disjointness
        let programs = (0..n)
            .map(|tid| barrier_program(n, tid, 5, slots, &emit))
            .collect::<Vec<_>>();
        let mut m = RefMachine::new(programs);
        m.run(10_000_000).expect("barrier integrity holds");
    }

    #[test]
    fn tree_barrier_holds_threads() {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let n = 5;
        let tb = TreeBarrier {
            arrive: lb.segment("arrive", n as u64 * 64, sync),
            go: lb.segment("go", n as u64 * 64, sync),
            fan_in: 2,
            fan_out: 2,
            n,
            data_region: Some(data),
        };
        check_barrier(lb, |a, tid| tb.emit(a, tid), n);
    }

    #[test]
    fn nary_tree_barrier_holds_threads() {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let n = 9;
        let tb = TreeBarrier {
            arrive: lb.segment("arrive", n as u64 * 64, sync),
            go: lb.segment("go", n as u64 * 64, sync),
            fan_in: 4,
            fan_out: 2,
            n,
            data_region: Some(data),
        };
        check_barrier(lb, |a, tid| tb.emit(a, tid), n);
    }

    #[test]
    fn central_barrier_holds_threads() {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let cb = CentralBarrier {
            count: lb.sync_var("count", sync, true),
            sense: lb.sync_var("sense", sync, true),
            n: 6,
            data_region: Some(data),
        };
        check_barrier(lb, |a, _tid| cb.emit(a), 6);
    }

    #[test]
    fn sw_backoff_doubles_and_caps() {
        let mut a = Asm::new("backoff");
        a.movi(BACKOFF, SW_BACKOFF_MIN);
        for _ in 0..8 {
            emit_sw_backoff(&mut a);
        }
        a.halt();
        let mut m = RefMachine::new(vec![a.build()]);
        m.run(10_000).unwrap();
        assert_eq!(m.thread(0).reg(BACKOFF), SW_BACKOFF_MAX);
    }

    #[test]
    fn tree_children_cover_all_nodes_once() {
        for (fan, n) in [(2usize, 16usize), (4, 64), (2, 5), (3, 7)] {
            let mut seen = vec![false; n];
            seen[0] = true;
            for parent in 0..n {
                for c in TreeBarrier::children(parent, fan, n) {
                    assert!(!seen[c], "child {c} claimed twice");
                    seen[c] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "fan {fan} n {n} missed a node");
        }
    }
}
