//! The non-blocking kernels: Michael–Scott queue, PLJ queue, Treiber stack,
//! Herlihy stack, Herlihy heap, and FAI counter (§5.3.1, adapted from \[29\]).
//!
//! All synchronization variables (queue head/tail, stack top, object root,
//! node `next` fields reached by CAS) are accessed with synchronization
//! loads and CAS — the access mix that stresses DeNovoSync0's single-reader
//! rule with "many repeated reads for equality checks" (§6.2). Each kernel
//! applies software exponential backoff after a failed attempt (paper:
//! delays in [128, 2048)).
//!
//! The Herlihy structures use Herlihy's small-object methodology: copy the
//! object into a fresh private block, modify the copy, and CAS the shared
//! root pointer. Their extra validation reads are the target of the §7.1.3
//! "software modifications" ablation (`KernelParams::reduced_checks`).

use crate::sync::{
    emit_end_barrier, emit_prologue, emit_sw_backoff, emit_sw_backoff_reset, TreeBarrier, EPOCH,
    ITER, ITERS, ONE, TID, ZERO,
};
use crate::{KernelParams, NonBlocking, Workload};
use dvs_mem::{Addr, LayoutBuilder, LINE_BYTES, WORD_BYTES};
use dvs_stats::TimeComponent;
use dvs_vm::asm::Label;
use dvs_vm::isa::Reg;
use dvs_vm::Asm;

const INS_SUM: Reg = Reg(16);
const INS_CNT: Reg = Reg(17);
const DEL_SUM: Reg = Reg(18);
const DEL_CNT: Reg = Reg(19);

const V: Reg = Reg(3);
const T4: Reg = Reg(4);
const T5: Reg = Reg(5);
const T6: Reg = Reg(6);
const T7: Reg = Reg(7);
const T8: Reg = Reg(8);
const T9: Reg = Reg(9);
const P10: Reg = Reg(10);
const P11: Reg = Reg(11);
const P12: Reg = Reg(12);
const T13: Reg = Reg(13);
const T14: Reg = Reg(14);

/// Herlihy small-object capacity (elements).
pub const HERLIHY_CAP: u64 = 48;

struct Shell {
    lb: LayoutBuilder,
    sync: dvs_mem::Region,
    data: dvs_mem::Region,
    results: Addr,
    barrier: TreeBarrier,
    init: Vec<(Addr, u64)>,
}

impl Shell {
    fn new(p: &KernelParams) -> Self {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let results = lb.segment("results", p.threads as u64 * LINE_BYTES, data);
        let arrive = lb.segment("eb_arrive", p.threads as u64 * LINE_BYTES, sync);
        let go = lb.segment("eb_go", p.threads as u64 * LINE_BYTES, sync);
        Shell {
            lb,
            sync,
            data,
            results,
            barrier: TreeBarrier {
                arrive,
                go,
                fan_in: 2,
                fan_out: 2,
                n: p.threads,
                data_region: None,
            },
            init: Vec::new(),
        }
    }

    /// Builds per-thread allocation pools. `allocs` is `(count-per-iter,
    /// words-per-alloc)` pairs; each allocation is line-padded by the VM.
    fn pools(&mut self, p: &KernelParams, allocs: &[(u64, u64)]) -> Vec<(Addr, u64)> {
        let per_iter: u64 = allocs
            .iter()
            .map(|&(n, words)| n * (words * WORD_BYTES).div_ceil(LINE_BYTES) * LINE_BYTES)
            .sum();
        let bytes = p.iters * per_iter + 4 * LINE_BYTES;
        (0..p.threads)
            .map(|t| {
                (
                    self.lb.segment(&format!("pool{t}"), bytes, self.data),
                    bytes,
                )
            })
            .collect()
    }
}

fn emit_unique_value(a: &mut Asm) {
    a.addi(T4, TID, 1);
    a.movi(T5, 1_000_000);
    a.mul(V, T4, T5);
    a.add(V, V, ITER);
}

fn emit_iteration_tail(a: &mut Asm, p: &KernelParams, top: Label) {
    a.rand_delay(p.nonsynch.0, p.nonsynch.1, TimeComponent::NonSynch);
    a.addi(ITER, ITER, 1);
    a.blt(ITER, ITERS, top);
}

fn emit_epilogue(a: &mut Asm, tid: usize, results: Addr, barrier: &TreeBarrier) {
    a.movi(P10, results.raw() + tid as u64 * LINE_BYTES);
    a.store(INS_SUM, P10, 0);
    a.store(INS_CNT, P10, 8);
    a.store(DEL_SUM, P10, 16);
    a.store(DEL_CNT, P10, 24);
    a.fence();
    a.movi(EPOCH, 0);
    emit_end_barrier(a, tid, barrier);
    a.halt();
}

fn maybe_backoff(a: &mut Asm, p: &KernelParams) {
    if p.sw_backoff {
        emit_sw_backoff(a);
    }
}

fn maybe_reset(a: &mut Asm, p: &KernelParams) {
    if p.sw_backoff {
        emit_sw_backoff_reset(a);
    }
}

fn sum_results(read: &dyn Fn(Addr) -> u64, results: Addr, threads: usize, col: u64) -> u64 {
    (0..threads)
        .map(|t| read(Addr::new(results.raw() + t as u64 * LINE_BYTES + col * 8)))
        .fold(0u64, |a, b| a.wrapping_add(b))
}

/// Builds a non-blocking workload.
pub fn build(n: NonBlocking, p: &KernelParams) -> Workload {
    match n {
        NonBlocking::FaiCounter => build_fai(p),
        NonBlocking::MsQueue => build_ms_like_queue(p, false),
        NonBlocking::PljQueue => build_ms_like_queue(p, true),
        NonBlocking::TreiberStack => build_treiber(p),
        NonBlocking::HerlihyStack => build_herlihy_stack(p),
        NonBlocking::HerlihyHeap => build_herlihy_heap(p),
    }
}

fn build_fai(p: &KernelParams) -> Workload {
    let mut sh = Shell::new(p);
    let counter = sh.lb.sync_var("counter", sh.sync, p.padded_locks);
    let results = sh.results;
    let barrier = sh.barrier;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("fai-counter");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            a.movi(P10, counter.raw());
            a.fai(T4, P10, 0, ONE);
            a.addi(INS_CNT, INS_CNT, 1);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let expected = p.iters * p.threads as u64;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        Vec::new(),
        Box::new(move |read| {
            let got = read(counter);
            if got == expected {
                Ok(())
            } else {
                Err(format!("FAI counter = {got}, expected {expected}"))
            }
        }),
    )
}

/// The Michael–Scott non-blocking queue (paper Figure 1); with
/// `snapshot = true`, a PLJ-style variant that takes a consistent
/// double-read snapshot before acting (more synchronization reads per
/// attempt).
fn build_ms_like_queue(p: &KernelParams, snapshot: bool) -> Workload {
    let mut sh = Shell::new(p);
    let head = sh.lb.sync_var("head", sh.sync, p.padded_locks);
    let tail = sh.lb.sync_var("tail", sh.sync, p.padded_locks);
    let dummy = sh.lb.segment("dummy", 16, sh.data);
    sh.init.extend([(head, dummy.raw()), (tail, dummy.raw())]);
    let pools = sh.pools(p, &[(1, 2)]);
    let results = sh.results;
    let barrier = sh.barrier;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new(if snapshot { "plj-queue" } else { "ms-queue" });
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            // ---- enqueue (Figure 1a) ----
            a.alloc(P12, 2);
            emit_unique_value(&mut a);
            a.store(V, P12, 0);
            a.store(ZERO, P12, 8);
            a.fence(); // publish: node fields visible before the linking CAS
            let e_loop = a.here();
            let e_retry = a.label();
            let e_done = a.label();
            a.movi(P10, tail.raw());
            a.loads(T4, P10, 0); // (1) pt := tail
            a.loads(T5, T4, 8); // (2) pn := pt->next
            if snapshot {
                // PLJ: re-read the pair and require a consistent snapshot.
                a.loads(T6, P10, 0);
                a.bne(T6, T4, e_retry);
                a.loads(T6, T4, 8);
                a.bne(T6, T5, e_retry);
            }
            a.loads(T6, P10, 0); // (3) if pt == tail
            a.bne(T6, T4, e_retry);
            let e_fix = a.label();
            a.bne(T5, ZERO, e_fix); // (4) if pn == null
            a.cas(T7, T4, 8, ZERO, P12); // (5) CAS(&pt->next, 0, node)
            a.beq(T7, ZERO, e_done);
            a.jmp(e_retry);
            a.bind(e_fix);
            a.cas(T7, P10, 0, T4, T5); // (6) CAS(&tail, pt, pn)
            a.bind(e_retry);
            maybe_backoff(&mut a, p);
            a.jmp(e_loop);
            a.bind(e_done);
            maybe_reset(&mut a, p);
            a.cas(T7, P10, 0, T4, P12); // (7) CAS(&tail, pt, node)
            a.add(INS_SUM, INS_SUM, V);
            a.addi(INS_CNT, INS_CNT, 1);
            // ---- dequeue (Figure 1b) ----
            let d_loop = a.here();
            let d_retry = a.label();
            let d_done = a.label();
            let d_empty = a.label();
            a.movi(P10, head.raw());
            a.movi(P11, tail.raw());
            a.loads(T4, P10, 0); // ph := head
            a.loads(T5, P11, 0); // pt := tail
            a.loads(T6, T4, 8); // pn := ph->next
            if snapshot {
                a.loads(T7, P10, 0);
                a.bne(T7, T4, d_retry);
                a.loads(T7, T4, 8);
                a.bne(T7, T6, d_retry);
            }
            a.loads(T7, P10, 0); // if ph == head
            a.bne(T7, T4, d_retry);
            let d_nonempty = a.label();
            a.bne(T4, T5, d_nonempty); // if ph == pt
            a.beq(T6, ZERO, d_empty); // pn == null: empty
            a.cas(T7, P11, 0, T5, T6); // CAS(&tail, pt, pn)
            a.jmp(d_retry);
            a.bind(d_nonempty);
            a.load(T8, T6, 0); // rtn := pn->value (immutable once published)
            a.cas(T7, P10, 0, T4, T6); // CAS(&head, ph, pn)
            a.beq(T7, T4, d_done);
            a.bind(d_retry);
            maybe_backoff(&mut a, p);
            a.jmp(d_loop);
            a.bind(d_done);
            maybe_reset(&mut a, p);
            a.add(DEL_SUM, DEL_SUM, T8);
            a.addi(DEL_CNT, DEL_CNT, 1);
            a.bind(d_empty);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let threads = p.threads;
    let max_nodes = p.iters as usize * threads + 2;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        pools,
        Box::new(move |read| {
            let enq_sum = sum_results(read, results, threads, 0);
            let enq_cnt = sum_results(read, results, threads, 1);
            let deq_sum = sum_results(read, results, threads, 2);
            let deq_cnt = sum_results(read, results, threads, 3);
            let mut node = read(head);
            let (mut rem_sum, mut rem_cnt, mut steps) = (0u64, 0u64, 0usize);
            loop {
                let next = read(Addr::new(node + 8));
                if next == 0 {
                    break;
                }
                rem_sum = rem_sum.wrapping_add(read(Addr::new(next)));
                rem_cnt += 1;
                node = next;
                steps += 1;
                if steps > max_nodes {
                    return Err("queue chain longer than total allocations (cycle?)".into());
                }
            }
            if enq_cnt != deq_cnt + rem_cnt || enq_sum != deq_sum.wrapping_add(rem_sum) {
                return Err(format!(
                    "queue conservation violated: enq ({enq_cnt}, {enq_sum}) deq ({deq_cnt}, {deq_sum}) remaining ({rem_cnt}, {rem_sum})"
                ));
            }
            Ok(())
        }),
    )
}

fn build_treiber(p: &KernelParams) -> Workload {
    let mut sh = Shell::new(p);
    let top_ptr = sh.lb.sync_var("top", sh.sync, p.padded_locks);
    let pools = sh.pools(p, &[(1, 2)]);
    let results = sh.results;
    let barrier = sh.barrier;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("treiber-stack");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            // ---- push ----
            a.alloc(P12, 2);
            emit_unique_value(&mut a);
            a.store(V, P12, 0);
            let pu_loop = a.here();
            let pu_done = a.label();
            a.movi(P10, top_ptr.raw());
            a.loads(T4, P10, 0); // old top
            a.store(T4, P12, 8); // node->next = old
            a.fence();
            a.cas(T5, P10, 0, T4, P12); // CAS(&top, old, node)
            a.beq(T5, T4, pu_done);
            maybe_backoff(&mut a, p);
            a.jmp(pu_loop);
            a.bind(pu_done);
            maybe_reset(&mut a, p);
            a.add(INS_SUM, INS_SUM, V);
            a.addi(INS_CNT, INS_CNT, 1);
            // ---- pop ----
            let po_loop = a.here();
            let po_done = a.label();
            let po_empty = a.label();
            a.movi(P10, top_ptr.raw());
            a.loads(T4, P10, 0);
            a.beq(T4, ZERO, po_empty);
            a.load(T5, T4, 8); // next (immutable once published)
            a.load(T6, T4, 0); // value
            a.cas(T7, P10, 0, T4, T5);
            a.beq(T7, T4, po_done);
            maybe_backoff(&mut a, p);
            a.jmp(po_loop);
            a.bind(po_done);
            maybe_reset(&mut a, p);
            a.add(DEL_SUM, DEL_SUM, T6);
            a.addi(DEL_CNT, DEL_CNT, 1);
            a.bind(po_empty);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let threads = p.threads;
    let max_nodes = p.iters as usize * threads + 2;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        pools,
        Box::new(move |read| {
            let ins_sum = sum_results(read, results, threads, 0);
            let ins_cnt = sum_results(read, results, threads, 1);
            let del_sum = sum_results(read, results, threads, 2);
            let del_cnt = sum_results(read, results, threads, 3);
            let mut node = read(top_ptr);
            let (mut rem_sum, mut rem_cnt, mut steps) = (0u64, 0u64, 0usize);
            while node != 0 {
                rem_sum = rem_sum.wrapping_add(read(Addr::new(node)));
                rem_cnt += 1;
                node = read(Addr::new(node + 8));
                steps += 1;
                if steps > max_nodes {
                    return Err("stack chain longer than total allocations (cycle?)".into());
                }
            }
            if ins_cnt != del_cnt + rem_cnt || ins_sum != del_sum.wrapping_add(rem_sum) {
                return Err(format!(
                    "Treiber conservation violated: pushed ({ins_cnt}, {ins_sum}) popped ({del_cnt}, {del_sum}) remaining ({rem_cnt}, {rem_sum})"
                ));
            }
            Ok(())
        }),
    )
}

/// Emits `copy block[0..=count_reg words] from src_reg to dst_reg`, starting
/// at word offset `from`. Clobbers T13, T14, T9.
fn emit_block_copy(a: &mut Asm, src: Reg, dst: Reg, count: Reg, from: u64) {
    a.movi(T9, from);
    let loop_ = a.here();
    let done = a.label();
    a.bge(T9, count, done);
    a.shl(T13, T9, 3);
    a.add(T13, T13, src);
    a.load(T14, T13, 0);
    a.shl(T13, T9, 3);
    a.add(T13, T13, dst);
    a.store(T14, T13, 0);
    a.addi(T9, T9, 1);
    a.jmp(loop_);
    a.bind(done);
}

/// Herlihy small-object stack: copy the published block, modify the copy,
/// CAS the root.
fn build_herlihy_stack(p: &KernelParams) -> Workload {
    let mut sh = Shell::new(p);
    let root = sh.lb.sync_var("root", sh.sync, p.padded_locks);
    let init_block = sh.lb.segment("init_block", (HERLIHY_CAP + 1) * 8, sh.data);
    sh.init.push((root, init_block.raw()));
    let pools = sh.pools(p, &[(2, HERLIHY_CAP + 1)]);
    let results = sh.results;
    let barrier = sh.barrier;
    let reduced = p.reduced_checks;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("herlihy-stack");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            emit_unique_value(&mut a);
            // ---- push: new block = old block + V on top ----
            a.alloc(P12, (HERLIHY_CAP + 1) as u32);
            let pu_loop = a.here();
            let pu_done = a.label();
            let pu_retry = a.label();
            let pu_skip = a.label();
            a.movi(P10, root.raw());
            a.loads(T4, P10, 0); // r = root
            if !reduced {
                // Early filter: is the root still r? (the §7.1.3 check)
                a.loads(T5, P10, 0);
                a.bne(T5, T4, pu_retry);
            }
            a.load(T5, T4, 0); // size
            a.movi(T6, HERLIHY_CAP);
            a.bge(T5, T6, pu_skip); // full: skip this push
                                    // copy [1..=size] then append.
            a.addi(T6, T5, 1);
            a.store(T6, P12, 0); // new size
            emit_block_copy(&mut a, T4, P12, T6, 1);
            a.shl(T13, T6, 3);
            a.add(T13, T13, P12);
            a.store(V, T13, 0); // elems[new size] = V
            a.fence();
            if !reduced {
                a.loads(T7, P10, 0); // validate before the CAS
                a.bne(T7, T4, pu_retry);
            }
            a.cas(T7, P10, 0, T4, P12);
            a.beq(T7, T4, pu_done);
            a.bind(pu_retry);
            maybe_backoff(&mut a, p);
            a.jmp(pu_loop);
            a.bind(pu_done);
            maybe_reset(&mut a, p);
            a.add(INS_SUM, INS_SUM, V);
            a.addi(INS_CNT, INS_CNT, 1);
            a.bind(pu_skip);
            // ---- pop: new block = old block minus its top ----
            a.alloc(P11, (HERLIHY_CAP + 1) as u32);
            let po_loop = a.here();
            let po_done = a.label();
            let po_retry = a.label();
            let po_empty = a.label();
            a.movi(P10, root.raw());
            a.loads(T4, P10, 0);
            if !reduced {
                a.loads(T5, P10, 0);
                a.bne(T5, T4, po_retry);
            }
            a.load(T5, T4, 0); // size
            a.beq(T5, ZERO, po_empty);
            // value = elems[size]
            a.shl(T13, T5, 3);
            a.add(T13, T13, T4);
            a.load(T8, T13, 0);
            a.addi(T6, T5, -1);
            a.store(T6, P11, 0);
            emit_block_copy(&mut a, T4, P11, T5, 1); // keep words 1..=size-1
                                                     // (word at index size in the copy is garbage; size field caps it)
            a.fence();
            if !reduced {
                a.loads(T7, P10, 0);
                a.bne(T7, T4, po_retry);
            }
            a.cas(T7, P10, 0, T4, P11);
            a.beq(T7, T4, po_done);
            a.bind(po_retry);
            maybe_backoff(&mut a, p);
            a.jmp(po_loop);
            a.bind(po_done);
            maybe_reset(&mut a, p);
            a.add(DEL_SUM, DEL_SUM, T8);
            a.addi(DEL_CNT, DEL_CNT, 1);
            a.bind(po_empty);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let threads = p.threads;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        pools,
        Box::new(move |read| {
            let ins_sum = sum_results(read, results, threads, 0);
            let ins_cnt = sum_results(read, results, threads, 1);
            let del_sum = sum_results(read, results, threads, 2);
            let del_cnt = sum_results(read, results, threads, 3);
            let block = read(root);
            let size = read(Addr::new(block));
            if size > HERLIHY_CAP {
                return Err(format!("published stack size {size} exceeds capacity"));
            }
            let mut rem_sum = 0u64;
            for i in 1..=size {
                rem_sum = rem_sum.wrapping_add(read(Addr::new(block + i * 8)));
            }
            if ins_cnt != del_cnt + size || ins_sum != del_sum.wrapping_add(rem_sum) {
                return Err(format!(
                    "Herlihy stack conservation violated: in ({ins_cnt}, {ins_sum}) out ({del_cnt}, {del_sum}) remaining ({size}, {rem_sum})"
                ));
            }
            Ok(())
        }),
    )
}

/// Herlihy small-object min-heap.
fn build_herlihy_heap(p: &KernelParams) -> Workload {
    let mut sh = Shell::new(p);
    let root = sh.lb.sync_var("root", sh.sync, p.padded_locks);
    let cap = 2 * p.threads as u64 + 8;
    let init_block = sh.lb.segment("init_block", (cap + 1) * 8, sh.data);
    sh.init.push((root, init_block.raw()));
    let pools = sh.pools(p, &[(2, cap + 1)]);
    let results = sh.results;
    let barrier = sh.barrier;
    let reduced = p.reduced_checks;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("herlihy-heap");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            // v = ((iter*37 + tid*13) % 1000) + 1
            a.movi(T4, 37);
            a.mul(V, ITER, T4);
            a.movi(T4, 13);
            a.mul(T5, TID, T4);
            a.add(V, V, T5);
            a.movi(T4, 1000);
            a.rem(V, V, T4);
            a.addi(V, V, 1);
            // ---- insert ----
            a.alloc(P12, (cap + 1) as u32);
            let in_loop = a.here();
            let in_done = a.label();
            let in_retry = a.label();
            let in_skip = a.label();
            a.movi(P10, root.raw());
            a.loads(T4, P10, 0);
            if !reduced {
                a.loads(T5, P10, 0);
                a.bne(T5, T4, in_retry);
            }
            a.load(T5, T4, 0); // size
            a.movi(T6, cap);
            a.bge(T5, T6, in_skip);
            a.addi(T6, T5, 1);
            a.store(T6, P12, 0);
            emit_block_copy(&mut a, T4, P12, T6, 1);
            // copy[new size] = v; sift up on the private copy.
            a.shl(T13, T6, 3);
            a.add(T13, T13, P12);
            a.store(V, T13, 0);
            // sift-up: i in T6
            let su_done = a.label();
            let su = a.here();
            a.beq(T6, ONE, su_done);
            a.shr(T7, T6, 1);
            a.shl(T13, T6, 3);
            a.add(T13, T13, P12);
            a.shl(T14, T7, 3);
            a.add(T14, T14, P12);
            a.load(T8, T13, 0);
            a.load(T9, T14, 0);
            a.bge(T8, T9, su_done);
            a.store(T9, T13, 0);
            a.store(T8, T14, 0);
            a.mov(T6, T7);
            a.jmp(su);
            a.bind(su_done);
            a.fence();
            if !reduced {
                a.loads(T7, P10, 0);
                a.bne(T7, T4, in_retry);
            }
            a.cas(T7, P10, 0, T4, P12);
            a.beq(T7, T4, in_done);
            a.bind(in_retry);
            maybe_backoff(&mut a, p);
            a.jmp(in_loop);
            a.bind(in_done);
            maybe_reset(&mut a, p);
            a.add(INS_SUM, INS_SUM, V);
            a.addi(INS_CNT, INS_CNT, 1);
            a.bind(in_skip);
            // ---- extract-min ----
            a.alloc(P11, (cap + 1) as u32);
            let ex_loop = a.here();
            let ex_done = a.label();
            let ex_retry = a.label();
            let ex_empty = a.label();
            a.movi(P10, root.raw());
            a.loads(T4, P10, 0);
            if !reduced {
                a.loads(T5, P10, 0);
                a.bne(T5, T4, ex_retry);
            }
            a.load(T5, T4, 0); // size
            a.beq(T5, ZERO, ex_empty);
            a.load(T8, T4, 8); // min = arr[1]
            a.addi(T6, T5, -1);
            a.store(T6, P11, 0); // new size
                                 // Keep old arr[1..=size-1] (bound = OLD size), then move the old
                                 // last element into the root slot.
            emit_block_copy(&mut a, T4, P11, T5, 1);
            // copy[1] = old arr[size]
            a.shl(T13, T5, 3);
            a.add(T13, T13, T4);
            a.load(T7, T13, 0);
            a.store(T7, P11, 8);
            // sift-down on the copy: i=1 in T5, size in T6
            a.movi(T5, 1);
            let sd = a.here();
            let sd_done = a.label();
            let no_r = a.label();
            a.shl(T7, T5, 1); // l
            a.blt(T6, T7, sd_done); // size < l
            a.mov(T9, T7); // m = l
            a.addi(T7, T7, 1); // r
            a.blt(T6, T7, no_r);
            a.shl(T13, T9, 3);
            a.add(T13, T13, P11);
            a.shl(T14, T7, 3);
            a.add(T14, T14, P11);
            a.load(Reg(20), T13, 0);
            a.load(Reg(21), T14, 0);
            a.bge(Reg(21), Reg(20), no_r);
            a.mov(T9, T7);
            a.bind(no_r);
            a.shl(T13, T5, 3);
            a.add(T13, T13, P11);
            a.shl(T14, T9, 3);
            a.add(T14, T14, P11);
            a.load(Reg(20), T13, 0);
            a.load(Reg(21), T14, 0);
            a.bge(Reg(21), Reg(20), sd_done);
            a.store(Reg(21), T13, 0);
            a.store(Reg(20), T14, 0);
            a.mov(T5, T9);
            a.jmp(sd);
            a.bind(sd_done);
            a.fence();
            if !reduced {
                a.loads(T7, P10, 0);
                a.bne(T7, T4, ex_retry);
            }
            a.cas(T7, P10, 0, T4, P11);
            a.beq(T7, T4, ex_done);
            a.bind(ex_retry);
            maybe_backoff(&mut a, p);
            a.jmp(ex_loop);
            a.bind(ex_done);
            maybe_reset(&mut a, p);
            a.add(DEL_SUM, DEL_SUM, T8);
            a.addi(DEL_CNT, DEL_CNT, 1);
            a.bind(ex_empty);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let threads = p.threads;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        pools,
        Box::new(move |read| {
            let ins_sum = sum_results(read, results, threads, 0);
            let ins_cnt = sum_results(read, results, threads, 1);
            let del_sum = sum_results(read, results, threads, 2);
            let del_cnt = sum_results(read, results, threads, 3);
            let block = read(root);
            let size = read(Addr::new(block));
            if size > cap {
                return Err(format!("published heap size {size} exceeds capacity"));
            }
            let at = |i: u64| read(Addr::new(block + i * 8));
            let mut rem_sum = 0u64;
            for i in 1..=size {
                rem_sum = rem_sum.wrapping_add(at(i));
                let (l, r) = (2 * i, 2 * i + 1);
                if l <= size && at(l) < at(i) {
                    return Err(format!("heap property violated at {i}/{l}"));
                }
                if r <= size && at(r) < at(i) {
                    return Err(format!("heap property violated at {i}/{r}"));
                }
            }
            if ins_cnt != del_cnt + size || ins_sum != del_sum.wrapping_add(rem_sum) {
                return Err(format!(
                    "Herlihy heap conservation violated: in ({ins_cnt}, {ins_sum}) out ({del_cnt}, {del_sum}) remaining ({size}, {rem_sum})"
                ));
            }
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockbased::tests::run_on_reference;
    use crate::KernelId;

    fn smoke(n: NonBlocking) {
        let p = KernelParams::smoke(4);
        let w = crate::build(KernelId::NonBlocking(n), &p);
        run_on_reference(&w, 10_000_000);
    }

    #[test]
    fn fai_counter_reference() {
        smoke(NonBlocking::FaiCounter);
    }

    #[test]
    fn ms_queue_reference() {
        smoke(NonBlocking::MsQueue);
    }

    #[test]
    fn plj_queue_reference() {
        smoke(NonBlocking::PljQueue);
    }

    #[test]
    fn treiber_stack_reference() {
        smoke(NonBlocking::TreiberStack);
    }

    #[test]
    fn herlihy_stack_reference() {
        smoke(NonBlocking::HerlihyStack);
    }

    #[test]
    fn herlihy_heap_reference() {
        smoke(NonBlocking::HerlihyHeap);
    }

    #[test]
    fn herlihy_reduced_checks_reference() {
        let mut p = KernelParams::smoke(4);
        p.reduced_checks = true;
        for n in [NonBlocking::HerlihyStack, NonBlocking::HerlihyHeap] {
            let w = crate::build(KernelId::NonBlocking(n), &p);
            run_on_reference(&w, 10_000_000);
        }
    }

    #[test]
    fn reduced_checks_shrinks_programs() {
        let p_full = KernelParams::smoke(4);
        let mut p_red = KernelParams::smoke(4);
        p_red.reduced_checks = true;
        let full = crate::build(KernelId::NonBlocking(NonBlocking::HerlihyStack), &p_full);
        let red = crate::build(KernelId::NonBlocking(NonBlocking::HerlihyStack), &p_red);
        assert!(
            red.programs[0].len() < full.programs[0].len(),
            "reduced-check variant must drop instructions"
        );
    }
}
