//! The lock-based kernels: single-lock queue, double-lock queue, stack,
//! heap, counter, and large-CS, each under TATAS or Anderson array locks
//! (12 of the 24 kernels).
//!
//! Every kernel follows §5.3.1's shape: per iteration, one insertion and one
//! retrieval (or one increment / one critical section), followed by a random
//! dummy computation; a binary tree barrier closes the kernel (its wait time
//! is the "barrier" component of Figures 3–4). Each workload carries a
//! semantic post-condition: value conservation for the containers (enqueued
//! = dequeued + remaining), exact totals for the counter and large-CS
//! kernels, and the heap property for the heap.

use crate::sync::{
    emit_end_barrier, emit_prologue, ArrayLock, TatasLock, TreeBarrier, EPOCH, ITER, ITERS, ONE,
    TICKET_A, TICKET_B, TID, ZERO,
};
use crate::{KernelParams, LockKind, LockedStruct, Workload};
use dvs_mem::layout::Region;
use dvs_mem::{Addr, LayoutBuilder, LINE_BYTES, WORD_BYTES};
use dvs_stats::TimeComponent;
use dvs_vm::isa::Reg;
use dvs_vm::Asm;

// Kernel-persistent accumulators.
const INS_SUM: Reg = Reg(16);
const INS_CNT: Reg = Reg(17);
const DEL_SUM: Reg = Reg(18);
const DEL_CNT: Reg = Reg(19);

// Iteration-scoped scratch (emitters use r0, r1, r15).
const V: Reg = Reg(3);
const T4: Reg = Reg(4);
const T5: Reg = Reg(5);
const T6: Reg = Reg(6);
const T7: Reg = Reg(7);
const T8: Reg = Reg(8);
const P10: Reg = Reg(10);
const P11: Reg = Reg(11);
const P12: Reg = Reg(12);

/// Words per large-CS critical section.
pub const LARGE_CS_WORDS: u64 = 64;

/// One lock instance usable by the kernel bodies.
#[derive(Debug, Clone, Copy)]
enum Lock {
    Tatas(TatasLock),
    Array(ArrayLock),
}

impl Lock {
    fn acquire(&self, a: &mut Asm) {
        match self {
            Lock::Tatas(l) => l.emit_acquire(a),
            Lock::Array(l) => l.emit_acquire(a),
        }
    }

    fn release(&self, a: &mut Asm) {
        match self {
            Lock::Tatas(l) => l.emit_release(a),
            Lock::Array(l) => l.emit_release(a),
        }
    }

    fn init(&self) -> Vec<(Addr, u64)> {
        match self {
            Lock::Tatas(_) => Vec::new(),
            Lock::Array(l) => l.init(),
        }
    }
}

struct Shared {
    lb: LayoutBuilder,
    sync: Region,
    data: Region,
    end_barrier: Option<TreeBarrier>,
    results: Addr,
    init: Vec<(Addr, u64)>,
}

impl Shared {
    fn new(p: &KernelParams) -> Self {
        let mut lb = LayoutBuilder::new();
        let sync = lb.region("sync");
        let data = lb.region("data");
        let results = lb.segment("results", p.threads as u64 * LINE_BYTES, data);
        let arrive = lb.segment("eb_arrive", p.threads as u64 * LINE_BYTES, sync);
        let go = lb.segment("eb_go", p.threads as u64 * LINE_BYTES, sync);
        Shared {
            lb,
            sync,
            data,
            end_barrier: Some(TreeBarrier {
                arrive,
                go,
                fan_in: 2,
                fan_out: 2,
                n: p.threads,
                data_region: None,
            }),
            results,
            init: Vec::new(),
        }
    }

    fn lock(&mut self, name: &str, kind: LockKind, p: &KernelParams, idx: Reg) -> Lock {
        let lock = match kind {
            LockKind::Tatas => Lock::Tatas(TatasLock {
                lock: self.lb.sync_var(name, self.sync, p.padded_locks),
                data_region: Some(self.data),
                sw_backoff: p.sw_backoff,
            }),
            LockKind::Array => {
                let stride = if p.padded_locks {
                    LINE_BYTES
                } else {
                    WORD_BYTES
                };
                let nslots = (p.threads as u64 + 1).next_power_of_two();
                Lock::Array(ArrayLock {
                    slots: self
                        .lb
                        .segment(&format!("{name}_slots"), nslots * stride, self.sync),
                    ticket: self
                        .lb
                        .sync_var(&format!("{name}_ticket"), self.sync, p.padded_locks),
                    nslots,
                    stride,
                    data_region: Some(self.data),
                    idx,
                })
            }
        };
        self.init.extend(lock.init());
        lock
    }

    /// Builds per-thread allocation pools. `allocs` is `(count-per-iter,
    /// words-per-alloc)` pairs; each allocation is line-padded by the VM.
    fn pools(&mut self, p: &KernelParams, allocs: &[(u64, u64)]) -> Vec<(Addr, u64)> {
        let per_iter: u64 = allocs
            .iter()
            .map(|&(n, words)| n * (words * WORD_BYTES).div_ceil(LINE_BYTES) * LINE_BYTES)
            .sum();
        let bytes = p.iters * per_iter + 4 * LINE_BYTES;
        (0..p.threads)
            .map(|t| {
                (
                    self.lb.segment(&format!("pool{t}"), bytes, self.data),
                    bytes,
                )
            })
            .collect()
    }
}

/// Emits `dst_addr_reg = base + idx_reg * 8` into `into`.
fn word_addr(a: &mut Asm, into: Reg, base: u64, idx: Reg) {
    a.shl(into, idx, 3);
    a.addi(into, into, base as i64);
}

/// value = (tid + 1) * 1_000_000 + iter — unique and nonzero.
fn emit_unique_value(a: &mut Asm) {
    a.addi(T4, TID, 1);
    a.movi(T5, 1_000_000);
    a.mul(V, T4, T5);
    a.add(V, V, ITER);
}

fn emit_iteration_tail(a: &mut Asm, p: &KernelParams, top: dvs_vm::asm::Label) {
    a.rand_delay(p.nonsynch.0, p.nonsynch.1, TimeComponent::NonSynch);
    a.addi(ITER, ITER, 1);
    a.blt(ITER, ITERS, top);
}

fn emit_epilogue(a: &mut Asm, tid: usize, results: Addr, barrier: &TreeBarrier) {
    // results[tid] = [ins_sum, ins_cnt, del_sum, del_cnt]
    a.movi(P10, results.raw() + tid as u64 * LINE_BYTES);
    a.store(INS_SUM, P10, 0);
    a.store(INS_CNT, P10, 8);
    a.store(DEL_SUM, P10, 16);
    a.store(DEL_CNT, P10, 24);
    a.fence();
    a.movi(EPOCH, 0);
    emit_end_barrier(a, tid, barrier);
    a.halt();
}

/// Sums one results column over all threads through the read closure.
fn sum_results(read: &dyn Fn(Addr) -> u64, results: Addr, threads: usize, col: u64) -> u64 {
    (0..threads)
        .map(|t| read(Addr::new(results.raw() + t as u64 * LINE_BYTES + col * 8)))
        .fold(0u64, |a, b| a.wrapping_add(b))
}

/// Builds a lock-based workload.
pub fn build(s: LockedStruct, kind: LockKind, p: &KernelParams) -> Workload {
    match s {
        LockedStruct::Counter => build_counter(kind, p),
        LockedStruct::SingleQueue => build_queue(kind, p, false),
        LockedStruct::DoubleQueue => build_queue(kind, p, true),
        LockedStruct::Stack => build_stack(kind, p),
        LockedStruct::Heap => build_heap(kind, p),
        LockedStruct::LargeCs => build_large_cs(kind, p),
    }
}

fn build_counter(kind: LockKind, p: &KernelParams) -> Workload {
    let mut sh = Shared::new(p);
    let lock = sh.lock("lock", kind, p, TICKET_A);
    let counter = sh.lb.segment("counter", 8, sh.data);
    let barrier = sh.end_barrier.take().expect("barrier");
    let results = sh.results;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("lock-counter");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            lock.acquire(&mut a);
            a.movi(P10, counter.raw());
            a.load(T4, P10, 0);
            a.addi(T4, T4, 1);
            a.store(T4, P10, 0);
            lock.release(&mut a);
            a.addi(INS_CNT, INS_CNT, 1);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let expected = p.iters * p.threads as u64;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        Vec::new(),
        Box::new(move |read| {
            let got = read(counter);
            if got == expected {
                Ok(())
            } else {
                Err(format!("counter = {got}, expected {expected}"))
            }
        }),
    )
}

fn build_large_cs(kind: LockKind, p: &KernelParams) -> Workload {
    let mut sh = Shared::new(p);
    let lock = sh.lock("lock", kind, p, TICKET_A);
    let arr = sh.lb.segment("cs_array", LARGE_CS_WORDS * 8, sh.data);
    let barrier = sh.end_barrier.take().expect("barrier");
    let results = sh.results;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("lock-large-cs");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            lock.acquire(&mut a);
            // for j in 0..K { arr[j] += 1 }
            a.movi(T7, 0);
            a.movi(T8, LARGE_CS_WORDS);
            let inner = a.here();
            word_addr(&mut a, P10, arr.raw(), T7);
            a.load(T4, P10, 0);
            a.addi(T4, T4, 1);
            a.store(T4, P10, 0);
            a.addi(T7, T7, 1);
            a.blt(T7, T8, inner);
            lock.release(&mut a);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let expected = p.iters * p.threads as u64;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        Vec::new(),
        Box::new(move |read| {
            for j in 0..LARGE_CS_WORDS {
                let got = read(Addr::new(arr.raw() + j * 8));
                if got != expected {
                    return Err(format!("cs_array[{j}] = {got}, expected {expected}"));
                }
            }
            Ok(())
        }),
    )
}

fn build_queue(kind: LockKind, p: &KernelParams, two_locks: bool) -> Workload {
    let mut sh = Shared::new(p);
    let enq_lock = sh.lock("tail_lock", kind, p, TICKET_A);
    let deq_lock = if two_locks {
        sh.lock("head_lock", kind, p, TICKET_B)
    } else {
        enq_lock
    };
    let head = sh.lb.segment("head", 8, sh.data);
    let tail = sh.lb.segment("tail", 8, sh.data);
    let dummy = sh.lb.segment("dummy", 16, sh.data);
    sh.init.extend([(head, dummy.raw()), (tail, dummy.raw())]);
    let pools = sh.pools(p, &[(1, 2)]);
    let barrier = sh.end_barrier.take().expect("barrier");
    let results = sh.results;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new(if two_locks { "double-q" } else { "single-q" });
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            // --- enqueue ---
            a.alloc(P12, 2); // node: [value, next]
            emit_unique_value(&mut a);
            a.store(V, P12, 0);
            a.store(ZERO, P12, 8);
            enq_lock.acquire(&mut a);
            a.movi(P10, tail.raw());
            a.load(T4, P10, 0); // old tail node
            a.store(P12, T4, 8); // old_tail->next = node
            a.store(P12, P10, 0); // tail = node
            enq_lock.release(&mut a);
            a.add(INS_SUM, INS_SUM, V);
            a.addi(INS_CNT, INS_CNT, 1);
            // --- dequeue ---
            let empty = a.label();
            deq_lock.acquire(&mut a);
            a.movi(P10, head.raw());
            a.load(T4, P10, 0); // dummy node
            a.load(T5, T4, 8); // dummy->next
            let after = a.label();
            a.beq(T5, ZERO, empty);
            a.load(T6, T5, 0); // value
            a.store(T5, P10, 0); // head = next (becomes the new dummy)
            a.add(DEL_SUM, DEL_SUM, T6);
            a.addi(DEL_CNT, DEL_CNT, 1);
            a.jmp(after);
            a.bind(empty);
            a.bind(after);
            deq_lock.release(&mut a);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let threads = p.threads;
    let max_nodes = p.iters as usize * threads + 2;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        pools,
        Box::new(move |read| {
            let enq_sum = sum_results(read, results, threads, 0);
            let enq_cnt = sum_results(read, results, threads, 1);
            let deq_sum = sum_results(read, results, threads, 2);
            let deq_cnt = sum_results(read, results, threads, 3);
            // Walk the remaining chain from head's dummy.
            let mut node = read(head);
            let mut rem_sum = 0u64;
            let mut rem_cnt = 0u64;
            let mut steps = 0;
            loop {
                let next = read(Addr::new(node + 8));
                if next == 0 {
                    break;
                }
                rem_sum = rem_sum.wrapping_add(read(Addr::new(next)));
                rem_cnt += 1;
                node = next;
                steps += 1;
                if steps > max_nodes {
                    return Err("queue chain longer than total allocations (cycle?)".into());
                }
            }
            if enq_cnt != deq_cnt + rem_cnt {
                return Err(format!(
                    "queue count mismatch: enq {enq_cnt} != deq {deq_cnt} + remaining {rem_cnt}"
                ));
            }
            if enq_sum != deq_sum.wrapping_add(rem_sum) {
                return Err(format!(
                    "queue value mismatch: enq {enq_sum} != deq {deq_sum} + remaining {rem_sum}"
                ));
            }
            Ok(())
        }),
    )
}

fn build_stack(kind: LockKind, p: &KernelParams) -> Workload {
    let mut sh = Shared::new(p);
    let lock = sh.lock("lock", kind, p, TICKET_A);
    let top_ptr = sh.lb.segment("top", 8, sh.data);
    let pools = sh.pools(p, &[(1, 2)]);
    let barrier = sh.end_barrier.take().expect("barrier");
    let results = sh.results;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("lock-stack");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            // --- push ---
            a.alloc(P12, 2);
            emit_unique_value(&mut a);
            a.store(V, P12, 0);
            lock.acquire(&mut a);
            a.movi(P10, top_ptr.raw());
            a.load(T4, P10, 0);
            a.store(T4, P12, 8); // node->next = old top
            a.store(P12, P10, 0); // top = node
            lock.release(&mut a);
            a.add(INS_SUM, INS_SUM, V);
            a.addi(INS_CNT, INS_CNT, 1);
            // --- pop ---
            let empty = a.label();
            lock.acquire(&mut a);
            a.movi(P10, top_ptr.raw());
            a.load(T4, P10, 0);
            a.beq(T4, ZERO, empty);
            a.load(T5, T4, 8); // next
            a.load(T6, T4, 0); // value
            a.store(T5, P10, 0); // top = next
            a.add(DEL_SUM, DEL_SUM, T6);
            a.addi(DEL_CNT, DEL_CNT, 1);
            a.bind(empty);
            lock.release(&mut a);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let threads = p.threads;
    let max_nodes = p.iters as usize * threads + 2;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        pools,
        Box::new(move |read| {
            let ins_sum = sum_results(read, results, threads, 0);
            let ins_cnt = sum_results(read, results, threads, 1);
            let del_sum = sum_results(read, results, threads, 2);
            let del_cnt = sum_results(read, results, threads, 3);
            let mut node = read(top_ptr);
            let mut rem_sum = 0u64;
            let mut rem_cnt = 0u64;
            let mut steps = 0;
            while node != 0 {
                rem_sum = rem_sum.wrapping_add(read(Addr::new(node)));
                rem_cnt += 1;
                node = read(Addr::new(node + 8));
                steps += 1;
                if steps > max_nodes {
                    return Err("stack chain longer than total allocations (cycle?)".into());
                }
            }
            if ins_cnt != del_cnt + rem_cnt || ins_sum != del_sum.wrapping_add(rem_sum) {
                return Err(format!(
                    "stack conservation violated: pushed ({ins_cnt}, {ins_sum}) popped ({del_cnt}, {del_sum}) remaining ({rem_cnt}, {rem_sum})"
                ));
            }
            Ok(())
        }),
    )
}

fn build_heap(kind: LockKind, p: &KernelParams) -> Workload {
    let mut sh = Shared::new(p);
    let lock = sh.lock("lock", kind, p, TICKET_A);
    let cap = 2 * p.threads as u64 + 8;
    let size_w = sh.lb.segment("heap_size", 8, sh.data);
    // 1-indexed array; slot 0 unused.
    let arr = sh.lb.segment("heap_arr", (cap + 1) * 8, sh.data);
    let barrier = sh.end_barrier.take().expect("barrier");
    let results = sh.results;

    let programs = (0..p.threads)
        .map(|tid| {
            let mut a = Asm::new("lock-heap");
            emit_prologue(&mut a, p.iters);
            let top = a.here();
            // v = ((iter*37 + tid*13) % 1000) + 1 — pseudo-random, nonzero.
            a.movi(T4, 37);
            a.mul(V, ITER, T4);
            a.movi(T4, 13);
            a.mul(T5, TID, T4);
            a.add(V, V, T5);
            a.movi(T4, 1000);
            a.rem(V, V, T4);
            a.addi(V, V, 1);
            // --- insert ---
            lock.acquire(&mut a);
            a.movi(P10, size_w.raw());
            a.load(T4, P10, 0);
            a.addi(T4, T4, 1);
            a.store(T4, P10, 0);
            word_addr(&mut a, P11, arr.raw(), T4);
            a.store(V, P11, 0);
            // sift-up: i in T4
            let sift_done = a.label();
            let sift = a.here();
            a.beq(T4, ONE, sift_done);
            a.shr(T5, T4, 1); // parent
            word_addr(&mut a, P11, arr.raw(), T4);
            word_addr(&mut a, P12, arr.raw(), T5);
            a.load(T6, P11, 0);
            a.load(T7, P12, 0);
            a.bge(T6, T7, sift_done); // parent <= child: done
            a.store(T7, P11, 0);
            a.store(T6, P12, 0);
            a.mov(T4, T5);
            a.jmp(sift);
            a.bind(sift_done);
            lock.release(&mut a);
            a.add(INS_SUM, INS_SUM, V);
            a.addi(INS_CNT, INS_CNT, 1);
            // --- extract-min ---
            let empty = a.label();
            let done = a.label();
            lock.acquire(&mut a);
            a.movi(P10, size_w.raw());
            a.load(T4, P10, 0); // size
            a.beq(T4, ZERO, empty);
            a.movi(P11, arr.raw() + 8);
            a.load(T6, P11, 0); // min
            word_addr(&mut a, P12, arr.raw(), T4);
            a.load(T5, P12, 0); // last
            a.store(T5, P11, 0);
            a.addi(T4, T4, -1);
            a.store(T4, P10, 0); // size--
            a.add(DEL_SUM, DEL_SUM, T6);
            a.addi(DEL_CNT, DEL_CNT, 1);
            // sift-down: i in T5 (index), size in T4
            a.movi(T5, 1);
            let sd = a.here();
            let sd_done = a.label();
            // l = 2i; if l > size: done
            a.shl(T6, T5, 1);
            let no_right = a.label();
            a.blt(T4, T6, sd_done); // size < l
                                    // m = l; if r <= size and arr[r] < arr[l]: m = r
            a.mov(T7, T6); // m = l
            a.addi(T8, T6, 1); // r
            a.blt(T4, T8, no_right);
            word_addr(&mut a, P11, arr.raw(), T6);
            word_addr(&mut a, P12, arr.raw(), T8);
            a.load(Reg(13), P11, 0);
            a.load(Reg(14), P12, 0);
            a.bge(Reg(14), Reg(13), no_right);
            a.mov(T7, T8);
            a.bind(no_right);
            // if arr[m] >= arr[i]: done else swap, i = m
            word_addr(&mut a, P11, arr.raw(), T5);
            word_addr(&mut a, P12, arr.raw(), T7);
            a.load(Reg(13), P11, 0);
            a.load(Reg(14), P12, 0);
            a.bge(Reg(14), Reg(13), sd_done);
            a.store(Reg(14), P11, 0);
            a.store(Reg(13), P12, 0);
            a.mov(T5, T7);
            a.jmp(sd);
            a.bind(sd_done);
            a.jmp(done);
            a.bind(empty);
            a.bind(done);
            lock.release(&mut a);
            emit_iteration_tail(&mut a, p, top);
            emit_epilogue(&mut a, tid, results, &barrier);
            a.build()
        })
        .collect();

    let threads = p.threads;
    Workload::new(
        sh.lb.build(),
        programs,
        sh.init,
        Vec::new(),
        Box::new(move |read| {
            let ins_sum = sum_results(read, results, threads, 0);
            let ins_cnt = sum_results(read, results, threads, 1);
            let del_sum = sum_results(read, results, threads, 2);
            let del_cnt = sum_results(read, results, threads, 3);
            let size = read(size_w);
            if size > cap {
                return Err(format!("heap size {size} exceeds capacity {cap}"));
            }
            let at = |i: u64| read(Addr::new(arr.raw() + i * 8));
            let mut rem_sum = 0u64;
            for i in 1..=size {
                rem_sum = rem_sum.wrapping_add(at(i));
                let (l, r) = (2 * i, 2 * i + 1);
                if l <= size && at(l) < at(i) {
                    return Err(format!("heap property violated at {i}/{l}"));
                }
                if r <= size && at(r) < at(i) {
                    return Err(format!("heap property violated at {i}/{r}"));
                }
            }
            if ins_cnt != del_cnt + size || ins_sum != del_sum.wrapping_add(rem_sum) {
                return Err(format!(
                    "heap conservation violated: in ({ins_cnt}, {ins_sum}) out ({del_cnt}, {del_sum}) remaining ({size}, {rem_sum})"
                ));
            }
            Ok(())
        }),
    )
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::KernelId;
    use dvs_vm::reference::RefMachine;

    /// Runs a workload on the untimed SC reference machine and applies its
    /// semantic check.
    pub(crate) fn run_on_reference(w: &Workload, extra_budget: u64) {
        let mut m = RefMachine::new(w.programs.clone());
        for &(addr, v) in &w.init {
            m.memory_mut().write_word(addr.word(), v);
        }
        for (i, &(base, bytes)) in w.pools.iter().enumerate() {
            m.set_thread_pool(i, base, bytes);
        }
        m.run(10_000_000 + extra_budget)
            .expect("reference run completes");
        let read = |a: Addr| m.memory().read_word(a.word());
        (w.check)(&read).expect("semantic check");
    }

    fn smoke(s: LockedStruct, kind: LockKind) {
        let p = KernelParams::smoke(4);
        let w = crate::build(KernelId::Locked(s, kind), &p);
        assert_eq!(w.programs.len(), 4);
        run_on_reference(&w, 0);
    }

    #[test]
    fn counter_tatas_reference() {
        smoke(LockedStruct::Counter, LockKind::Tatas);
    }

    #[test]
    fn counter_array_reference() {
        smoke(LockedStruct::Counter, LockKind::Array);
    }

    #[test]
    fn single_queue_tatas_reference() {
        smoke(LockedStruct::SingleQueue, LockKind::Tatas);
    }

    #[test]
    fn double_queue_tatas_reference() {
        smoke(LockedStruct::DoubleQueue, LockKind::Tatas);
    }

    #[test]
    fn double_queue_array_reference() {
        smoke(LockedStruct::DoubleQueue, LockKind::Array);
    }

    #[test]
    fn stack_tatas_reference() {
        smoke(LockedStruct::Stack, LockKind::Tatas);
    }

    #[test]
    fn heap_tatas_reference() {
        smoke(LockedStruct::Heap, LockKind::Tatas);
    }

    #[test]
    fn heap_array_reference() {
        smoke(LockedStruct::Heap, LockKind::Array);
    }

    #[test]
    fn large_cs_tatas_reference() {
        smoke(LockedStruct::LargeCs, LockKind::Tatas);
    }

    #[test]
    fn large_cs_array_reference() {
        smoke(LockedStruct::LargeCs, LockKind::Array);
    }

    #[test]
    fn unpadded_locks_share_lines() {
        let mut p = KernelParams::smoke(4);
        p.padded_locks = false;
        let w = crate::build(
            KernelId::Locked(LockedStruct::DoubleQueue, LockKind::Tatas),
            &p,
        );
        let tl = w.layout.segment("tail_lock").expect("tail lock");
        let hl = w.layout.segment("head_lock").expect("head lock");
        assert_eq!(tl.base.line(), hl.base.line(), "unpadded locks pack");
        run_on_reference(&w, 0);
    }
}
