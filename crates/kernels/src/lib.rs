//! The paper's 24 synchronization kernels, written in the thread-VM DSL.
//!
//! §5.3.1 of the paper: lock-based concurrent data structures (adapted from
//! Michael & Scott \[29\]) under Test-and-Test-and-Set and Anderson array
//! locks, six non-blocking data structures, and three barrier shapes in
//! balanced and unbalanced variants:
//!
//! | group | kernels |
//! |---|---|
//! | TATAS locks | single-lock queue, double-lock queue, stack, heap, counter, large-CS |
//! | array locks | the same six |
//! | non-blocking | Michael–Scott queue, PLJ queue, Treiber stack, Herlihy stack, Herlihy heap, FAI counter |
//! | barriers | binary tree, n-ary tree (fan-in 4 / fan-out 2), centralized sense-reversing — each balanced and unbalanced |
//!
//! [`build`] turns a [`KernelId`] + [`KernelParams`] into a [`Workload`]:
//! a memory layout (with the DeNovo regions the paper's static
//! self-invalidations need), one program per thread, initial memory values,
//! per-thread allocation pools, and a semantic post-condition check.
//! Workloads run identically on the timed simulator (`dvs-core::System`) and
//! on the untimed SC reference machine (`dvs-vm::reference::RefMachine`).

pub mod barriers;
pub mod lockbased;
pub mod nonblocking;
pub mod sync;

use dvs_mem::{Addr, MemoryLayout};
use dvs_vm::Program;
use std::sync::Arc;

/// Which lock implementation a lock-based kernel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Test-and-Test-and-Set on a single variable.
    Tatas,
    /// Anderson array (queue) lock.
    Array,
}

/// The barrier shapes of §5.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierKind {
    /// Static binary tree (fan-in 2 / fan-out 2).
    Tree,
    /// Static tree with fan-in 4 and fan-out 2.
    Nary,
    /// Centralized sense-reversing barrier.
    Central,
}

/// The lock-based data structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockedStruct {
    /// Single-lock Michael–Scott-style linked queue.
    SingleQueue,
    /// Two-lock queue (separate head and tail locks).
    DoubleQueue,
    /// Linked stack.
    Stack,
    /// Array-based binary min-heap.
    Heap,
    /// Shared counter.
    Counter,
    /// Fixed-length large critical section over a shared array.
    LargeCs,
}

impl LockedStruct {
    /// All six, in the paper's figure order.
    pub const ALL: [LockedStruct; 6] = [
        LockedStruct::SingleQueue,
        LockedStruct::DoubleQueue,
        LockedStruct::Stack,
        LockedStruct::Heap,
        LockedStruct::Counter,
        LockedStruct::LargeCs,
    ];
}

/// The non-blocking kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonBlocking {
    /// Michael–Scott non-blocking queue (Figure 1 of the paper).
    MsQueue,
    /// Prakash–Lee–Johnson snapshot-based queue.
    PljQueue,
    /// Treiber stack.
    TreiberStack,
    /// Herlihy small-object-copying stack.
    HerlihyStack,
    /// Herlihy small-object-copying heap.
    HerlihyHeap,
    /// Fetch-and-increment counter.
    FaiCounter,
}

impl NonBlocking {
    /// All six, in the paper's figure order.
    pub const ALL: [NonBlocking; 6] = [
        NonBlocking::MsQueue,
        NonBlocking::PljQueue,
        NonBlocking::TreiberStack,
        NonBlocking::HerlihyStack,
        NonBlocking::HerlihyHeap,
        NonBlocking::FaiCounter,
    ];
}

/// One of the 24 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// A lock-based structure under the given lock.
    Locked(LockedStruct, LockKind),
    /// A non-blocking structure.
    NonBlocking(NonBlocking),
    /// A barrier kernel; `true` selects the unbalanced dummy-compute range.
    Barrier(BarrierKind, bool),
}

impl KernelId {
    /// The kernel's display name (matches the paper's figure labels).
    pub fn name(self) -> String {
        match self {
            KernelId::Locked(s, k) => {
                let s = match s {
                    LockedStruct::SingleQueue => "single Q",
                    LockedStruct::DoubleQueue => "double Q",
                    LockedStruct::Stack => "stack",
                    LockedStruct::Heap => "heap",
                    LockedStruct::Counter => "counter",
                    LockedStruct::LargeCs => "large CS",
                };
                match k {
                    LockKind::Tatas => s.to_owned(),
                    LockKind::Array => format!("{s} (array)"),
                }
            }
            KernelId::NonBlocking(n) => match n {
                NonBlocking::MsQueue => "M-S queue".to_owned(),
                NonBlocking::PljQueue => "PLJ queue".to_owned(),
                NonBlocking::TreiberStack => "Treiber stack".to_owned(),
                NonBlocking::HerlihyStack => "Herlihy stack".to_owned(),
                NonBlocking::HerlihyHeap => "Herlihy heap".to_owned(),
                NonBlocking::FaiCounter => "FAI counter".to_owned(),
            },
            KernelId::Barrier(k, ub) => {
                let base = match k {
                    BarrierKind::Tree => "tree",
                    BarrierKind::Nary => "n-ary",
                    BarrierKind::Central => "central",
                };
                if ub {
                    format!("{base} (UB)")
                } else {
                    base.to_owned()
                }
            }
        }
    }

    /// A stable, serializable identifier for this kernel, so experiment
    /// specs can address workloads as data (`"tatas:counter"`,
    /// `"array:heap"`, `"nb:ms_queue"`, `"barrier:tree:ub"`, ...).
    /// [`KernelId::from_token`] inverts it.
    pub fn token(self) -> String {
        match self {
            KernelId::Locked(s, k) => {
                let s = match s {
                    LockedStruct::SingleQueue => "single_q",
                    LockedStruct::DoubleQueue => "double_q",
                    LockedStruct::Stack => "stack",
                    LockedStruct::Heap => "heap",
                    LockedStruct::Counter => "counter",
                    LockedStruct::LargeCs => "large_cs",
                };
                let k = match k {
                    LockKind::Tatas => "tatas",
                    LockKind::Array => "array",
                };
                format!("{k}:{s}")
            }
            KernelId::NonBlocking(n) => {
                let n = match n {
                    NonBlocking::MsQueue => "ms_queue",
                    NonBlocking::PljQueue => "plj_queue",
                    NonBlocking::TreiberStack => "treiber_stack",
                    NonBlocking::HerlihyStack => "herlihy_stack",
                    NonBlocking::HerlihyHeap => "herlihy_heap",
                    NonBlocking::FaiCounter => "fai_counter",
                };
                format!("nb:{n}")
            }
            KernelId::Barrier(k, ub) => {
                let k = match k {
                    BarrierKind::Tree => "tree",
                    BarrierKind::Nary => "nary",
                    BarrierKind::Central => "central",
                };
                if ub {
                    format!("barrier:{k}:ub")
                } else {
                    format!("barrier:{k}")
                }
            }
        }
    }

    /// Parses a token produced by [`KernelId::token`]. Returns `None` for
    /// anything else.
    pub fn from_token(token: &str) -> Option<KernelId> {
        let mut parts = token.split(':');
        let head = parts.next()?;
        let id = match head {
            "tatas" | "array" => {
                let kind = if head == "tatas" {
                    LockKind::Tatas
                } else {
                    LockKind::Array
                };
                let s = match parts.next()? {
                    "single_q" => LockedStruct::SingleQueue,
                    "double_q" => LockedStruct::DoubleQueue,
                    "stack" => LockedStruct::Stack,
                    "heap" => LockedStruct::Heap,
                    "counter" => LockedStruct::Counter,
                    "large_cs" => LockedStruct::LargeCs,
                    _ => return None,
                };
                KernelId::Locked(s, kind)
            }
            "nb" => KernelId::NonBlocking(match parts.next()? {
                "ms_queue" => NonBlocking::MsQueue,
                "plj_queue" => NonBlocking::PljQueue,
                "treiber_stack" => NonBlocking::TreiberStack,
                "herlihy_stack" => NonBlocking::HerlihyStack,
                "herlihy_heap" => NonBlocking::HerlihyHeap,
                "fai_counter" => NonBlocking::FaiCounter,
                _ => return None,
            }),
            "barrier" => {
                let k = match parts.next()? {
                    "tree" => BarrierKind::Tree,
                    "nary" => BarrierKind::Nary,
                    "central" => BarrierKind::Central,
                    _ => return None,
                };
                match parts.next() {
                    None => KernelId::Barrier(k, false),
                    Some("ub") => KernelId::Barrier(k, true),
                    Some(_) => return None,
                }
            }
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(id)
    }

    /// All 24 kernels, grouped as in the paper's Figures 3–6.
    pub fn all() -> Vec<KernelId> {
        let mut v = Vec::with_capacity(24);
        for s in LockedStruct::ALL {
            v.push(KernelId::Locked(s, LockKind::Tatas));
        }
        for s in LockedStruct::ALL {
            v.push(KernelId::Locked(s, LockKind::Array));
        }
        for n in NonBlocking::ALL {
            v.push(KernelId::NonBlocking(n));
        }
        for k in [BarrierKind::Tree, BarrierKind::Nary, BarrierKind::Central] {
            v.push(KernelId::Barrier(k, false));
        }
        for k in [BarrierKind::Tree, BarrierKind::Nary, BarrierKind::Central] {
            v.push(KernelId::Barrier(k, true));
        }
        v
    }
}

/// Workload-shaping parameters (§5.3.1 defaults via [`KernelParams::paper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelParams {
    /// Number of threads (= cores).
    pub threads: usize,
    /// Iterations per thread (paper: 100; 1000 for the FAI counter).
    pub iters: u64,
    /// Dummy-compute range between iterations, `[lo, hi)` cycles.
    pub nonsynch: (u64, u64),
    /// Software exponential backoff after failed attempts (paper: enabled
    /// for the non-blocking kernels, capped at [128, 2048)).
    pub sw_backoff: bool,
    /// Pad each synchronization variable to a full line (paper default; the
    /// padding ablation turns this off).
    pub padded_locks: bool,
    /// Herlihy-kernel modification of §7.1.3: drop redundant equality
    /// checks.
    pub reduced_checks: bool,
}

impl KernelParams {
    /// The paper's parameters for `kernel` on a `cores`-core system.
    pub fn paper(kernel: KernelId, cores: usize) -> Self {
        let unbalanced = matches!(kernel, KernelId::Barrier(_, true));
        let nonsynch = match (cores >= 64, unbalanced) {
            (false, false) => (1400, 1800),
            (false, true) => (400, 2800),
            (true, false) => (6200, 6600),
            (true, true) => (1600, 11_200),
        };
        KernelParams {
            threads: cores,
            iters: if kernel == KernelId::NonBlocking(NonBlocking::FaiCounter) {
                1000
            } else {
                100
            },
            nonsynch,
            sw_backoff: matches!(kernel, KernelId::NonBlocking(_)),
            padded_locks: true,
            reduced_checks: false,
        }
    }

    /// Small parameters for fast functional tests.
    pub fn smoke(threads: usize) -> Self {
        KernelParams {
            threads,
            iters: 6,
            nonsynch: (40, 80),
            sw_backoff: true,
            padded_locks: true,
            reduced_checks: false,
        }
    }
}

/// A semantic post-condition over the final memory image. The argument reads
/// the architecturally-current value of an address (through whatever cache
/// holds it). `Send + Sync` so a built workload can be run (or re-run) from
/// any campaign worker thread.
pub type Check = Box<dyn Fn(&dyn Fn(Addr) -> u64) -> Result<(), String> + Send + Sync>;

/// A ready-to-run workload.
///
/// Layout and programs are reference-counted: materializing a [`Workload`]
/// into a simulator shares them instead of deep-cloning, so running the same
/// workload under several protocols or configurations costs no per-run
/// allocation.
pub struct Workload {
    /// The memory layout (regions drive DeNovo self-invalidation).
    pub layout: Arc<MemoryLayout>,
    /// One program per thread.
    pub programs: Vec<Arc<Program>>,
    /// Initial memory values.
    pub init: Vec<(Addr, u64)>,
    /// Per-thread allocation pools `(base, bytes)` — inside the layout so
    /// allocated nodes belong to self-invalidation regions.
    pub pools: Vec<(Addr, u64)>,
    /// Semantic post-condition.
    pub check: Check,
}

impl Workload {
    /// Wraps freshly-built parts into a shareable workload.
    pub fn new(
        layout: MemoryLayout,
        programs: Vec<Program>,
        init: Vec<(Addr, u64)>,
        pools: Vec<(Addr, u64)>,
        check: Check,
    ) -> Self {
        Workload {
            layout: Arc::new(layout),
            programs: programs.into_iter().map(Arc::new).collect(),
            init,
            pools,
            check,
        }
    }
}

// Workload builders are pure functions of their parameters and their output
// is shared across campaign worker threads; keep it thread-safe by
// construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Workload>();
};

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("programs", &self.programs.len())
            .field("init", &self.init.len())
            .field("pools", &self.pools.len())
            .finish_non_exhaustive()
    }
}

/// Builds the workload for one kernel.
///
/// # Panics
///
/// Panics if `params.threads` is zero.
pub fn build(kernel: KernelId, params: &KernelParams) -> Workload {
    assert!(params.threads > 0, "need at least one thread");
    match kernel {
        KernelId::Locked(s, k) => lockbased::build(s, k, params),
        KernelId::NonBlocking(n) => nonblocking::build(n, params),
        KernelId::Barrier(k, _) => barriers::build(k, params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_24_kernels() {
        let all = KernelId::all();
        assert_eq!(all.len(), 24);
        let mut names: Vec<String> = all.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 24, "kernel names must be unique");
    }

    #[test]
    fn tokens_round_trip_and_are_unique() {
        let all = KernelId::all();
        let mut tokens: Vec<String> = all.iter().map(|k| k.token()).collect();
        for (k, tok) in all.iter().zip(&tokens) {
            assert_eq!(
                KernelId::from_token(tok),
                Some(*k),
                "token {tok} must parse back"
            );
        }
        tokens.sort();
        tokens.dedup();
        assert_eq!(tokens.len(), 24, "kernel tokens must be unique");
        assert_eq!(KernelId::from_token("tatas:counter:extra"), None);
        assert_eq!(KernelId::from_token("nb:bogus"), None);
        assert_eq!(KernelId::from_token(""), None);
    }

    #[test]
    fn paper_params_match_section_5() {
        let p = KernelParams::paper(KernelId::Locked(LockedStruct::Counter, LockKind::Tatas), 16);
        assert_eq!(p.iters, 100);
        assert_eq!(p.nonsynch, (1400, 1800));
        assert!(!p.sw_backoff);
        let p = KernelParams::paper(KernelId::NonBlocking(NonBlocking::FaiCounter), 64);
        assert_eq!(p.iters, 1000);
        assert_eq!(p.nonsynch, (6200, 6600));
        assert!(p.sw_backoff);
        let p = KernelParams::paper(KernelId::Barrier(BarrierKind::Central, true), 64);
        assert_eq!(p.nonsynch, (1600, 11_200));
    }
}
